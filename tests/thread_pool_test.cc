#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace ust {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  const size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(n, [&](size_t i, int) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, WorkerIndicesStayInRange) {
  ThreadPool pool(3);
  std::atomic<bool> bad{false};
  pool.ParallelFor(5000, [&](size_t, int worker) {
    if (worker < 0 || worker >= 3) bad.store(true);
  });
  EXPECT_FALSE(bad.load());
}

TEST(ThreadPoolTest, SingleThreadRunsInlineInOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<size_t> order;
  pool.ParallelFor(100, [&](size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(i);
  });
  ASSERT_EQ(order.size(), 100u);
  for (size_t i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, ZeroAndNonPositiveSizes) {
  ThreadPool pool(0);  // clamps to 1
  EXPECT_EQ(pool.num_threads(), 1);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t, int) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(round + 1, [&](size_t i, int) { sum.fetch_add(i + 1); });
    const size_t n = static_cast<size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2);
  }
}

TEST(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  // The chunked variant must produce the same [begin, end) decomposition at
  // any pool size — per-chunk derived state (e.g. RNG offsets) depends on it.
  auto chunks_at = [](int threads) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<size_t, size_t>> chunks;
    pool.ParallelForChunked(1000, 128, [&](size_t b, size_t e, int) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.insert({b, e});
    });
    return chunks;
  };
  const auto serial = chunks_at(1);
  EXPECT_EQ(serial, chunks_at(2));
  EXPECT_EQ(serial, chunks_at(4));
  // And the decomposition tiles [0, 1000) exactly.
  size_t expected_begin = 0;
  for (const auto& [b, e] : serial) {
    EXPECT_EQ(b, expected_begin);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 1000u);
}

TEST(MorselDequeTest, PopsFixedMorselsFrontToBack) {
  MorselDeque deque;
  deque.Reset(0, 10, 4);
  size_t b = 0, e = 0;
  ASSERT_TRUE(deque.PopFront(&b, &e));
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 4u);
  ASSERT_TRUE(deque.PopFront(&b, &e));
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(e, 8u);
  ASSERT_TRUE(deque.PopFront(&b, &e));  // final morsel is short
  EXPECT_EQ(b, 8u);
  EXPECT_EQ(e, 10u);
  EXPECT_FALSE(deque.PopFront(&b, &e));
  EXPECT_EQ(deque.remaining(), 0u);
}

TEST(MorselDequeTest, StealTakesMorselAlignedBackHalf) {
  MorselDeque deque;
  deque.Reset(0, 16, 2);  // 8 morsels
  size_t b = 0, e = 0;
  ASSERT_TRUE(deque.StealHalf(&b, &e));  // thief: back 4 of 8 morsels
  EXPECT_EQ(b, 8u);
  EXPECT_EQ(e, 16u);
  EXPECT_EQ(deque.remaining(), 8u);
  ASSERT_TRUE(deque.StealHalf(&b, &e));  // next thief: back 2 of 4
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(e, 8u);
  ASSERT_TRUE(deque.PopFront(&b, &e));  // owner keeps the front
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 2u);
  ASSERT_TRUE(deque.StealHalf(&b, &e));  // one morsel left: thief takes it
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(e, 4u);
  EXPECT_FALSE(deque.StealHalf(&b, &e));
  EXPECT_FALSE(deque.PopFront(&b, &e));
}

TEST(MorselDequeTest, StealNeverSplitsTheShortFinalMorsel) {
  MorselDeque deque;
  deque.Reset(0, 10, 4);  // morsels [0,4) [4,8) [8,10)
  size_t b = 0, e = 0;
  ASSERT_TRUE(deque.StealHalf(&b, &e));  // 3 morsels -> thief takes back 2
  EXPECT_EQ(b, 4u);
  EXPECT_EQ(e, 10u);
  ASSERT_TRUE(deque.PopFront(&b, &e));
  EXPECT_EQ(b, 0u);
  EXPECT_EQ(e, 4u);
  EXPECT_FALSE(deque.PopFront(&b, &e));
}

TEST(MorselDequeTest, ConcurrentPopsAndStealsClaimEveryIndexOnce) {
  // 4 threads hammer one deque with a mix of pops and steals; every index
  // of [0, n) must be claimed by exactly one thread — the invariant the
  // serving tier's bit-identity rests on.
  constexpr size_t kN = 4096;
  MorselDeque deque;
  deque.Reset(0, kN, 3);
  std::vector<std::atomic<int>> claimed(kN);
  for (auto& c : claimed) c.store(0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      size_t b = 0, e = 0;
      for (;;) {
        const bool got = (t % 2 == 0) ? deque.PopFront(&b, &e)
                                      : deque.StealHalf(&b, &e);
        if (!got) break;
        for (size_t i = b; i < e; ++i) claimed[i].fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(claimed[i].load(), 1) << "index " << i;
  }
}

}  // namespace
}  // namespace ust
