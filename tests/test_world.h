// Shared fixtures for the test suite: the paper's Figure 1 example world and
// small parametric worlds used across modules.
#pragma once

#include <memory>
#include <vector>

#include "markov/builders.h"
#include "markov/transition_matrix.h"
#include "model/trajectory_database.h"
#include "query/query.h"
#include "util/check.h"

namespace ust::testing {

/// Build a transition matrix or abort (tests construct valid inputs).
inline TransitionMatrixPtr MakeMatrix(
    size_t num_states, std::vector<std::vector<TransitionMatrix::Entry>> rows) {
  auto result = TransitionMatrix::FromRows(num_states, std::move(rows));
  UST_CHECK(result.ok());
  return std::make_shared<const TransitionMatrix>(result.MoveValue());
}

/// \brief The exact scenario of the paper's Figure 1 / Example 1.
///
/// Four states on a line at distances 1, 2, 3, 4 from the query point (0,0).
/// o1 starts at s2 (t=1) and has three possible trajectories with
/// probabilities 0.5 / 0.25 / 0.25; o2 starts at s3 and has two, each 0.5.
/// Ground truth (worked out in the paper):
///   P∃NN(o2, q, D, {1,2,3}) = 0.25
///   P∀NN(o1, q, D, {1,2,3}) = 0.75
///   PCNNQ(q, D, {1,2,3}, 0.1) = { (o1, {1,2,3}), (o2, {2,3}) } (maximal).
struct Figure1World {
  std::shared_ptr<const StateSpace> space;
  std::shared_ptr<TrajectoryDatabase> db;
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{1, 3};
  ObjectId o1 = 0, o2 = 0;
  StateId s1 = 0, s2 = 1, s3 = 2, s4 = 3;
};

inline Figure1World MakeFigure1World() {
  Figure1World world;
  world.space = std::make_shared<const StateSpace>(std::vector<Point2>{
      {0, 1}, {0, 2}, {0, 3}, {0, 4}});  // s1..s4 at distances 1..4 from q
  // o1: s2 -> {s1: .5, s3: .5}; s1 absorbing; s3 -> {s1: .5, s3: .5}.
  auto m1 = MakeMatrix(4, {{{world.s1, 1.0}},
                           {{world.s1, 0.5}, {world.s3, 0.5}},
                           {{world.s1, 0.5}, {world.s3, 0.5}},
                           {{world.s4, 1.0}}});
  // o2: s3 -> {s2: .5, s4: .5}; s2 and s4 absorbing.
  auto m2 = MakeMatrix(4, {{{world.s1, 1.0}},
                           {{world.s2, 1.0}},
                           {{world.s2, 0.5}, {world.s4, 0.5}},
                           {{world.s4, 1.0}}});
  world.db = std::make_shared<TrajectoryDatabase>(world.space);
  auto obs1 = ObservationSeq::Create({{1, world.s2}});
  auto obs2 = ObservationSeq::Create({{1, world.s3}});
  UST_CHECK(obs1.ok() && obs2.ok());
  world.o1 = world.db->AddObject(obs1.MoveValue(), m1, /*end_tic=*/3);
  world.o2 = world.db->AddObject(obs2.MoveValue(), m2, /*end_tic=*/3);
  return world;
}

/// \brief A one-dimensional random-walk world: `n` states equally spaced on
/// a line, each stepping left/right/staying with the given probabilities.
/// Useful for hand-checkable adaptation and sampling tests.
struct LineWorld {
  std::shared_ptr<const StateSpace> space;
  TransitionMatrixPtr matrix;
};

inline LineWorld MakeLineWorld(size_t n, double p_left = 0.25,
                               double p_stay = 0.5) {
  UST_CHECK(n >= 2);
  std::vector<Point2> coords;
  coords.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    coords.push_back({static_cast<double>(i), 0.0});
  }
  const double p_right = 1.0 - p_left - p_stay;
  UST_CHECK(p_right >= 0.0);
  std::vector<std::vector<TransitionMatrix::Entry>> rows(n);
  for (StateId s = 0; s < n; ++s) {
    double stay = p_stay;
    if (s == 0) {
      stay += p_left;  // reflecting boundaries keep rows stochastic
    } else {
      rows[s].push_back({s - 1, p_left});
    }
    if (s + 1 == n) {
      stay += p_right;
    } else {
      rows[s].push_back({s + 1, p_right});
    }
    rows[s].push_back({s, stay});
  }
  LineWorld world;
  world.space = std::make_shared<const StateSpace>(std::move(coords));
  world.matrix = MakeMatrix(n, std::move(rows));
  return world;
}

}  // namespace ust::testing
