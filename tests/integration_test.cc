// End-to-end integration: generated worlds, full pipeline, cross-validation
// of sampling vs exact semantics on small instances, and the effectiveness
// ordering of model-adaptation variants (the paper's Figure 12 claim).
#include <gtest/gtest.h>

#include <cmath>

#include "gen/roadnet.h"
#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "model/adaptation.h"
#include "query/engine.h"
#include "query/exact.h"
#include "query/snapshot.h"
#include "util/stats.h"

namespace ust {
namespace {

TEST(IntegrationTest, FullPipelineOnSyntheticWorld) {
  SyntheticConfig config;
  config.num_states = 800;
  config.num_objects = 30;
  config.lifetime = 30;
  config.obs_interval = 6;
  config.horizon = 50;
  config.seed = 42;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  ASSERT_TRUE(db.EnsureAllPosteriors().ok());
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  QueryEngine engine(db, &tree.value());
  Rng rng(1);
  TimeInterval T = BusiestInterval(db, 8);
  MonteCarloOptions options;
  options.num_worlds = 1000;
  int nonempty = 0;
  for (int iter = 0; iter < 5; ++iter) {
    QueryTrajectory q = RandomQueryState(db.space(), rng);
    auto forall = engine.Forall(q, T, 0.0, options);
    auto exists = engine.Exists(q, T, 0.0, options);
    ASSERT_TRUE(forall.ok());
    ASSERT_TRUE(exists.ok());
    nonempty += !exists.value().results.empty();
    // Global sanity: probabilities in [0,1], exists >= forall per object.
    for (const auto& r : forall.value().results) {
      EXPECT_GE(r.prob, 0.0);
      EXPECT_LE(r.prob, 1.0);
    }
    double forall_sum = 0.0;
    for (const auto& r : forall.value().results) forall_sum += r.prob;
    EXPECT_LE(forall_sum, 1.0 + 0.05);  // MC slack
  }
  EXPECT_GT(nonempty, 0);
}

TEST(IntegrationTest, SamplingMatchesExactOnTinyWorld) {
  SyntheticConfig config;
  config.num_states = 200;
  config.num_objects = 4;
  config.lifetime = 8;
  config.obs_interval = 4;
  config.horizon = 8;
  config.seed = 17;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  Rng rng(2);
  QueryTrajectory q = RandomQueryState(db.space(), rng);
  TimeInterval T{2, 5};
  std::vector<ObjectId> ids = db.AliveSometime(T.start, T.end);
  ASSERT_FALSE(ids.empty());
  auto exact = ExactPnnByEnumeration(db, ids, q, T, 1, 5000000);
  if (!exact.ok()) {
    GTEST_SKIP() << "world too large for enumeration: "
                 << exact.status().ToString();
  }
  MonteCarloOptions options;
  options.num_worlds = 20000;
  auto mc = EstimatePnn(db, ids, ids, q, T, options);
  ASSERT_TRUE(mc.ok());
  const double eps = HoeffdingEpsilon(20000, 0.01);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NEAR(mc.value()[i].forall_prob, exact.value()[i].forall_prob, eps);
    EXPECT_NEAR(mc.value()[i].exists_prob, exact.value()[i].exists_prob, eps);
  }
}

TEST(IntegrationTest, AdaptationVariantOrderingOnRoadnet) {
  // Figure 12's qualitative claim: FB <= F <= NO in mean error against
  // held-out ground truth, and FB beats the uniform ablation U.
  RoadnetConfig config;
  config.num_states = 800;
  config.num_objects = 12;
  config.num_training_trips = 80;
  config.lifetime = 48;
  config.obs_interval = 8;
  config.seed = 23;
  auto world = GenerateRoadnetWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  const StateSpace& space = db.space();

  double err_no = 0, err_f = 0, err_fb = 0, err_u = 0;
  size_t count = 0;
  for (size_t i = 0; i < db.size(); ++i) {
    const auto& obj = db.object(static_cast<ObjectId>(i));
    const Trajectory& truth = world.value().ground_truth[i];
    auto posterior = obj.Posterior();
    ASSERT_TRUE(posterior.ok());
    auto forward = ForwardFilterMarginals(obj.matrix(), obj.observations());
    ASSERT_TRUE(forward.ok());
    auto apriori =
        AprioriMarginals(obj.matrix(), obj.observations().first(),
                         posterior.value()->num_slices());
    auto uniform = UniformReachableMarginals(*posterior.value());
    for (Tic t = truth.start; t <= truth.end(); ++t) {
      const Point2& true_pos = space.coord(truth.At(t));
      size_t rel = static_cast<size_t>(t - truth.start);
      err_no += apriori[rel].ExpectedDistanceTo(space, true_pos);
      err_f += forward.value()[rel].ExpectedDistanceTo(space, true_pos);
      err_fb += posterior.value()->MarginalAt(t).ExpectedDistanceTo(space,
                                                                    true_pos);
      err_u += uniform[rel].ExpectedDistanceTo(space, true_pos);
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  err_no /= count;
  err_f /= count;
  err_fb /= count;
  err_u /= count;
  EXPECT_LT(err_fb, err_f);
  EXPECT_LT(err_f, err_no);
  EXPECT_LT(err_fb, err_u);
}

TEST(IntegrationTest, SnapshotBiasOnGeneratedWorld) {
  // SS systematically underestimates P∀NN relative to the sampler (SA).
  SyntheticConfig config;
  config.num_states = 400;
  config.num_objects = 8;
  config.lifetime = 16;
  config.obs_interval = 4;
  config.horizon = 16;
  config.seed = 31;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  Rng rng(3);
  TimeInterval T{4, 8};
  std::vector<ObjectId> ids = db.AliveThroughout(T.start, T.end);
  ASSERT_GT(ids.size(), 1u);
  MonteCarloOptions options;
  options.num_worlds = 5000;
  int under = 0, informative = 0;
  for (int iter = 0; iter < 6; ++iter) {
    QueryTrajectory q = RandomQueryState(db.space(), rng);
    auto sa = EstimatePnn(db, ids, ids, q, T, options);
    auto ss = SnapshotEstimatePnn(db, ids, q, T);
    ASSERT_TRUE(sa.ok());
    ASSERT_TRUE(ss.ok());
    for (size_t i = 0; i < ids.size(); ++i) {
      double p_sa = sa.value()[i].forall_prob;
      if (p_sa > 0.05 && p_sa < 0.95) {
        ++informative;
        under += ss.value()[i].forall_prob < p_sa + 0.02;
      }
    }
  }
  if (informative == 0) GTEST_SKIP() << "no informative cases drawn";
  EXPECT_GE(under, informative * 3 / 4);
}

TEST(IntegrationTest, QueryTrajectoryReferenceWorks) {
  // Full pipeline with a moving reference trajectory instead of a point.
  SyntheticConfig config;
  config.num_states = 500;
  config.num_objects = 15;
  config.lifetime = 20;
  config.obs_interval = 5;
  config.horizon = 30;
  config.seed = 53;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  QueryEngine engine(db, &tree.value());
  TimeInterval T = BusiestInterval(db, 5);
  Rng rng(4);
  QueryTrajectory q = RandomQueryTrajectory(
      db.space(), *world.value().matrix, T.start, T.length(), rng);
  MonteCarloOptions options;
  options.num_worlds = 800;
  auto forall = engine.Forall(q, T, 0.0, options);
  auto exists = engine.Exists(q, T, 0.0, options);
  ASSERT_TRUE(forall.ok());
  ASSERT_TRUE(exists.ok());
  double sum = 0.0;
  for (const auto& r : forall.value().results) sum += r.prob;
  EXPECT_LE(sum, 1.05);
}

}  // namespace
}  // namespace ust
