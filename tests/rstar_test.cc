#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "index/rstar_tree.h"
#include "util/rng.h"

namespace ust {
namespace {

Rect3 RandomBox(Rng& rng, double extent = 0.1) {
  double x = rng.Uniform(), y = rng.Uniform(), t = rng.Uniform(0, 100);
  Rect3 r;
  r.lo = {x, y, t};
  r.hi = {x + rng.Uniform(0, extent), y + rng.Uniform(0, extent),
          t + rng.Uniform(0, 10.0)};
  return r;
}

TEST(RStarTreeTest, EmptyTree) {
  RStarTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0);
  Rect3 everything;
  everything.lo = {-1e9, -1e9, -1e9};
  everything.hi = {1e9, 1e9, 1e9};
  EXPECT_TRUE(tree.Query(everything).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, SingleInsertAndQuery) {
  RStarTree tree;
  Rect3 box = WithTimeInterval(MakeRect2(0, 0, 1, 1), 5, 10);
  tree.Insert(box, 42);
  EXPECT_EQ(tree.size(), 1u);
  auto hits = tree.Query(WithTimeInterval(MakeRect2(0.5, 0.5, 0.6, 0.6), 7, 8));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
  // Disjoint in time.
  EXPECT_TRUE(
      tree.Query(WithTimeInterval(MakeRect2(0.5, 0.5, 0.6, 0.6), 11, 12))
          .empty());
  // Disjoint in space.
  EXPECT_TRUE(
      tree.Query(WithTimeInterval(MakeRect2(2, 2, 3, 3), 7, 8)).empty());
}

TEST(RStarTreeTest, GrowsAndKeepsInvariants) {
  RStarTree tree;
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    tree.Insert(RandomBox(rng), static_cast<uint64_t>(i));
    if (i % 50 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after insert " << i;
    }
  }
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_GE(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, QueryMatchesBruteForce) {
  RStarTree tree;
  Rng rng(6);
  std::vector<Rect3> boxes;
  for (int i = 0; i < 800; ++i) {
    Rect3 box = RandomBox(rng);
    boxes.push_back(box);
    tree.Insert(box, static_cast<uint64_t>(i));
  }
  for (int iter = 0; iter < 50; ++iter) {
    Rect3 query = RandomBox(rng, 0.3);
    auto got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected) << "query " << iter;
  }
}

TEST(RStarTreeTest, QueryVisitReportsBoxes) {
  RStarTree tree;
  Rect3 box = WithTimeInterval(MakeRect2(0, 0, 1, 1), 0, 1);
  tree.Insert(box, 7);
  size_t visits = 0;
  tree.QueryVisit(box, [&](const Rect3& b, uint64_t payload) {
    ++visits;
    EXPECT_EQ(payload, 7u);
    EXPECT_EQ(b.lo[0], 0.0);
    EXPECT_EQ(b.hi[2], 1.0);
  });
  EXPECT_EQ(visits, 1u);
}

TEST(RStarTreeTest, DuplicateBoxesAllRetrieved) {
  RStarTree tree;
  Rect3 box = WithTimeInterval(MakeRect2(0.4, 0.4, 0.6, 0.6), 1, 2);
  for (uint64_t i = 0; i < 60; ++i) tree.Insert(box, i);
  auto hits = tree.Query(box);
  EXPECT_EQ(hits.size(), 60u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RStarTreeTest, MoveSemantics) {
  RStarTree tree;
  Rng rng(7);
  for (int i = 0; i < 100; ++i) tree.Insert(RandomBox(rng), i);
  RStarTree moved = std::move(tree);
  EXPECT_EQ(moved.size(), 100u);
  EXPECT_TRUE(moved.CheckInvariants().ok());
  RStarTree assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.size(), 100u);
  EXPECT_TRUE(assigned.CheckInvariants().ok());
}

TEST(RStarTreeTest, PointBoxesWork) {
  // Degenerate boxes (single observations) must be indexable and findable.
  RStarTree tree;
  for (int i = 0; i < 100; ++i) {
    double v = i / 100.0;
    tree.Insert(WithTimeInterval(MakeRect2(v, v, v, v), i, i), i);
  }
  auto hits = tree.Query(WithTimeInterval(MakeRect2(0.2, 0.2, 0.3, 0.3), 0, 99));
  EXPECT_EQ(hits.size(), 11u);  // 0.20 .. 0.30 inclusive
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

// Parameterized over node capacities and reinsert on/off: correctness must
// not depend on tuning.
struct TreeParams {
  size_t max_entries;
  size_t min_entries;
  bool forced_reinsert;
};

class RStarTreeParamTest : public ::testing::TestWithParam<TreeParams> {};

TEST_P(RStarTreeParamTest, InvariantsAndQueriesUnderAllConfigs) {
  RStarTree::Options options;
  options.max_entries = GetParam().max_entries;
  options.min_entries = GetParam().min_entries;
  options.forced_reinsert = GetParam().forced_reinsert;
  RStarTree tree(options);
  Rng rng(17 + GetParam().max_entries);
  std::vector<Rect3> boxes;
  for (int i = 0; i < 400; ++i) {
    Rect3 box = RandomBox(rng);
    boxes.push_back(box);
    tree.Insert(box, static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (int iter = 0; iter < 20; ++iter) {
    Rect3 query = RandomBox(rng, 0.4);
    auto got = tree.Query(query);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> expected;
    for (size_t i = 0; i < boxes.size(); ++i) {
      if (boxes[i].Intersects(query)) expected.push_back(i);
    }
    EXPECT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, RStarTreeParamTest,
    ::testing::Values(TreeParams{4, 2, true}, TreeParams{4, 2, false},
                      TreeParams{8, 3, true}, TreeParams{16, 6, true},
                      TreeParams{16, 6, false}, TreeParams{32, 13, true}));

TEST(RStarTreeTest, NearestMatchesBruteForce) {
  RStarTree tree;
  Rng rng(41);
  std::vector<Rect3> boxes;
  for (int i = 0; i < 600; ++i) {
    Rect3 box = RandomBox(rng);
    boxes.push_back(box);
    tree.Insert(box, static_cast<uint64_t>(i));
  }
  auto mindist = [](const std::array<double, 3>& p, const Rect3& box) {
    double d2 = 0;
    for (int i = 0; i < 3; ++i) {
      double d = std::max({box.lo[i] - p[i], 0.0, p[i] - box.hi[i]});
      d2 += d * d;
    }
    return std::sqrt(d2);
  };
  for (int iter = 0; iter < 25; ++iter) {
    std::array<double, 3> p = {rng.Uniform(), rng.Uniform(),
                               rng.Uniform(0, 100)};
    for (size_t k : {1u, 5u, 20u}) {
      auto got = tree.Nearest(p, k);
      ASSERT_EQ(got.size(), k);
      // Distances ascending and correct.
      std::vector<double> all;
      for (const Rect3& box : boxes) all.push_back(mindist(p, box));
      std::sort(all.begin(), all.end());
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(got[i].first, all[i], 1e-12);
        if (i > 0) {
          EXPECT_GE(got[i].first, got[i - 1].first);
        }
        EXPECT_NEAR(got[i].first, mindist(p, boxes[got[i].second]), 1e-12);
      }
    }
  }
}

TEST(RStarTreeTest, NearestOnSmallTrees) {
  RStarTree tree;
  EXPECT_TRUE(tree.Nearest({0, 0, 0}, 3).empty());
  tree.Insert(WithTimeInterval(MakeRect2(1, 1, 2, 2), 0, 1), 7);
  auto one = tree.Nearest({0, 0, 0}, 3);
  ASSERT_EQ(one.size(), 1u);  // fewer than k entries exist
  EXPECT_EQ(one[0].second, 7u);
  EXPECT_NEAR(one[0].first, std::sqrt(2.0), 1e-12);
  EXPECT_TRUE(tree.Nearest({0, 0, 0}, 0).empty());
}

TEST(RStarTreeTest, NearestInsideBoxIsZero) {
  RStarTree tree;
  tree.Insert(WithTimeInterval(MakeRect2(0, 0, 2, 2), 0, 10), 1);
  auto hits = tree.Nearest({1, 1, 5}, 1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_DOUBLE_EQ(hits[0].first, 0.0);
}

TEST(RStarTreeTest, SkewedDataKeepsBalance) {
  // Clustered inserts (the hard case for balance heuristics).
  RStarTree tree;
  Rng rng(23);
  for (int cluster = 0; cluster < 10; ++cluster) {
    double cx = rng.Uniform(), cy = rng.Uniform(), ct = rng.Uniform(0, 100);
    for (int i = 0; i < 80; ++i) {
      Rect3 r;
      double x = cx + rng.Normal() * 0.01, y = cy + rng.Normal() * 0.01;
      double t = ct + rng.Normal();
      r.lo = {x, y, t};
      r.hi = {x + 0.005, y + 0.005, t + 1};
      tree.Insert(r, cluster * 100 + i);
    }
  }
  EXPECT_EQ(tree.size(), 800u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  // Height stays logarithmic-ish: capacity 16 over 800 entries => depth <= 4.
  EXPECT_LE(tree.height(), 4);
}

}  // namespace
}  // namespace ust
