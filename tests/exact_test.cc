#include <gtest/gtest.h>

#include "model/adaptation.h"
#include "query/exact.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;
using testing::MakeLineWorld;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

TEST(EnumerationTest, Figure1ObjectWorlds) {
  Figure1World world = MakeFigure1World();
  auto p1 = world.db->object(world.o1).Posterior();
  auto p2 = world.db->object(world.o2).Posterior();
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p2.ok());
  auto worlds1 = EnumerateWindowTrajectories(*p1.value(), 1, 3);
  auto worlds2 = EnumerateWindowTrajectories(*p2.value(), 1, 3);
  ASSERT_TRUE(worlds1.ok());
  ASSERT_TRUE(worlds2.ok());
  // Exactly the trajectory sets from the paper's Figure 1.
  ASSERT_EQ(worlds1.value().size(), 3u);
  ASSERT_EQ(worlds2.value().size(), 2u);
  double total1 = 0.0;
  for (const auto& wt : worlds1.value()) {
    total1 += wt.prob;
    if (wt.traj.states == std::vector<StateId>{world.s2, world.s1, world.s1}) {
      EXPECT_NEAR(wt.prob, 0.5, 1e-12);
    } else {
      EXPECT_NEAR(wt.prob, 0.25, 1e-12);
    }
  }
  EXPECT_NEAR(total1, 1.0, 1e-12);
  for (const auto& wt : worlds2.value()) EXPECT_NEAR(wt.prob, 0.5, 1e-12);
}

TEST(EnumerationTest, WindowRestriction) {
  Figure1World world = MakeFigure1World();
  auto p1 = world.db->object(world.o1).Posterior();
  ASSERT_TRUE(p1.ok());
  // Window {2,3}: suffixes s1s1 (.5), s3s1 (.25), s3s3 (.25).
  auto worlds = EnumerateWindowTrajectories(*p1.value(), 2, 3);
  ASSERT_TRUE(worlds.ok());
  ASSERT_EQ(worlds.value().size(), 3u);
  // Single-tic window.
  auto single = EnumerateWindowTrajectories(*p1.value(), 3, 3);
  ASSERT_TRUE(single.ok());
  double prob_s1 = 0.0;
  for (const auto& wt : single.value()) {
    if (wt.traj.states[0] == world.s1) prob_s1 += wt.prob;
  }
  EXPECT_NEAR(prob_s1, 0.75, 1e-12);
}

TEST(EnumerationTest, CapTriggersResourceLimit) {
  auto world = MakeLineWorld(9, 0.3, 0.4);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 4}, {8, 4}}));
  ASSERT_TRUE(model.ok());
  auto worlds = EnumerateWindowTrajectories(model.value(), 0, 8, /*max=*/2);
  ASSERT_FALSE(worlds.ok());
  EXPECT_EQ(worlds.status().code(), StatusCode::kResourceLimit);
}

TEST(ExactPnnTest, Figure1GroundTruth) {
  Figure1World world = MakeFigure1World();
  auto estimates = ExactPnnByEnumeration(
      *world.db, {world.o1, world.o2}, world.q, world.T);
  ASSERT_TRUE(estimates.ok());
  const auto& e = estimates.value();
  ASSERT_EQ(e.size(), 2u);
  // The paper's worked example: P∀NN(o1) = 0.75, P∃NN(o2) = 0.25.
  EXPECT_NEAR(e[0].forall_prob, 0.75, 1e-12);
  EXPECT_NEAR(e[1].exists_prob, 0.25, 1e-12);
  // Complements within this 2-object world (no ties occur).
  EXPECT_NEAR(e[0].exists_prob, 1.0, 1e-12);
  EXPECT_NEAR(e[1].forall_prob, 0.0, 1e-12);
}

TEST(ExactPnnTest, ForallAndExistsSumRules) {
  Figure1World world = MakeFigure1World();
  auto estimates = ExactPnnByEnumeration(
      *world.db, {world.o1, world.o2}, world.q, world.T);
  ASSERT_TRUE(estimates.ok());
  double sum_forall = 0.0, sum_exists = 0.0;
  for (const auto& e : estimates.value()) {
    EXPECT_LE(e.forall_prob, e.exists_prob + 1e-12);
    sum_forall += e.forall_prob;
    sum_exists += e.exists_prob;
  }
  // Some object is always NN at every tic; with no ties forall-probabilities
  // sum to at most 1 while exists-probabilities sum to at least 1.
  EXPECT_LE(sum_forall, 1.0 + 1e-12);
  EXPECT_GE(sum_exists, 1.0 - 1e-12);
}

TEST(DominationTest, MatchesEnumerationOnFigure1) {
  Figure1World world = MakeFigure1World();
  auto p1 = world.db->object(world.o1).Posterior();
  auto p2 = world.db->object(world.o2).Posterior();
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto dom = DominationProbability(world.db->space(), *p1.value(),
                                   *p2.value(), world.q, world.T,
                                   /*strict=*/false);
  ASSERT_TRUE(dom.ok());
  // o1 dominates o2 throughout T in exactly the P∀NN(o1) worlds.
  EXPECT_NEAR(dom.value(), 0.75, 1e-12);
  auto dom_rev = DominationProbability(world.db->space(), *p2.value(),
                                       *p1.value(), world.q, world.T, false);
  ASSERT_TRUE(dom_rev.ok());
  EXPECT_NEAR(dom_rev.value(), 0.0, 1e-12);
}

TEST(DominationTest, StrictVersusNonStrict) {
  // Two identical single-state objects tie everywhere: non-strict domination
  // is certain, strict is impossible.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}});
  auto matrix = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId a = db.AddObject(Obs({{0, 0}}), matrix, 3);
  ObjectId b = db.AddObject(Obs({{0, 0}}), matrix, 3);
  auto pa = db.object(a).Posterior();
  auto pb = db.object(b).Posterior();
  ASSERT_TRUE(pa.ok() && pb.ok());
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 3};
  auto nonstrict = DominationProbability(*space, *pa.value(), *pb.value(), q,
                                         T, false);
  auto strict =
      DominationProbability(*space, *pa.value(), *pb.value(), q, T, true);
  ASSERT_TRUE(nonstrict.ok() && strict.ok());
  EXPECT_DOUBLE_EQ(nonstrict.value(), 1.0);
  EXPECT_DOUBLE_EQ(strict.value(), 0.0);
}

TEST(DominationTest, MonotoneInIntervalLength) {
  Figure1World world = MakeFigure1World();
  auto p1 = world.db->object(world.o1).Posterior();
  auto p2 = world.db->object(world.o2).Posterior();
  ASSERT_TRUE(p1.ok() && p2.ok());
  double prev = 1.0;
  for (Tic end = 1; end <= 3; ++end) {
    auto dom = DominationProbability(world.db->space(), *p1.value(),
                                     *p2.value(), world.q, {1, end}, false);
    ASSERT_TRUE(dom.ok());
    EXPECT_LE(dom.value(), prev + 1e-12);
    prev = dom.value();
  }
}

TEST(DominationTest, RequiresAliveness) {
  Figure1World world = MakeFigure1World();
  auto p1 = world.db->object(world.o1).Posterior();
  auto p2 = world.db->object(world.o2).Posterior();
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto dom = DominationProbability(world.db->space(), *p1.value(),
                                   *p2.value(), world.q, {0, 3}, false);
  EXPECT_FALSE(dom.ok());
}

TEST(DominationTest, AgreesWithEnumerationOnRandomLineWorlds) {
  Rng rng(41);
  for (int iter = 0; iter < 5; ++iter) {
    auto world = MakeLineWorld(6, 0.3, 0.4);
    auto space = world.space;
    TrajectoryDatabase db(space);
    StateId sa = static_cast<StateId>(rng.UniformInt(6));
    StateId sb = static_cast<StateId>(rng.UniformInt(6));
    ObjectId a = db.AddObject(Obs({{0, sa}}), world.matrix, 4);
    ObjectId b = db.AddObject(Obs({{0, sb}}), world.matrix, 4);
    QueryTrajectory q = QueryTrajectory::FromPoint(
        {rng.Uniform(0, 5), rng.Uniform(-1, 1)});
    TimeInterval T{0, 4};
    auto pa = db.object(a).Posterior();
    auto pb = db.object(b).Posterior();
    ASSERT_TRUE(pa.ok() && pb.ok());
    auto dom = DominationProbability(*space, *pa.value(), *pb.value(), q, T,
                                     /*strict=*/false);
    ASSERT_TRUE(dom.ok());
    // In a 2-object DB, P∀NN(a) equals non-strict domination of a over b.
    auto exact = ExactPnnByEnumeration(db, {a, b}, q, T);
    ASSERT_TRUE(exact.ok());
    EXPECT_NEAR(dom.value(), exact.value()[0].forall_prob, 1e-9)
        << "iter " << iter;
  }
}

}  // namespace
}  // namespace ust
