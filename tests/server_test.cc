// Tests of the serving tier (DESIGN.md section 5): epoch-based snapshot
// isolation of TrajectoryDatabase (online inserts and copy-on-write lifetime
// extension never perturb a pinned epoch), the stale-index guard, the
// (epoch, interval)-keyed LRU session cache, and the QueryServer front-end —
// whose outcomes must be bit-identical to serial QuerySession::RunAll on the
// same epoch even with concurrent client threads and a concurrent writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/query_server.h"
#include "server/session_cache.h"
#include "util/rng.h"
#include "util/trace.h"

namespace ust {
namespace {

bool SameOutcome(const QueryOutcome& a, const QueryOutcome& b) {
  if (a.status.code() != b.status.code()) return false;
  if (a.kind != b.kind || a.executor != b.executor) return false;
  if (a.pnn.results.size() != b.pnn.results.size()) return false;
  for (size_t i = 0; i < a.pnn.results.size(); ++i) {
    if (a.pnn.results[i].object != b.pnn.results[i].object) return false;
    if (a.pnn.results[i].prob != b.pnn.results[i].prob) return false;  // bitwise
  }
  if (a.pnn.num_candidates != b.pnn.num_candidates) return false;
  if (a.pnn.num_influencers != b.pnn.num_influencers) return false;
  if (a.pcnn.pcnn.entries.size() != b.pcnn.pcnn.entries.size()) return false;
  for (size_t i = 0; i < a.pcnn.pcnn.entries.size(); ++i) {
    const PcnnEntry& x = a.pcnn.pcnn.entries[i];
    const PcnnEntry& y = b.pcnn.pcnn.entries[i];
    if (x.object != y.object || x.tics != y.tics || x.prob != y.prob) {
      return false;
    }
  }
  return true;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 18;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }

  TrajectoryDatabase& db() { return *world_->db; }

  /// A mixed request stream: several query points, two intervals, all three
  /// semantics. Backends stay kAuto — the planner is part of the pipeline
  /// under test and is deterministic per spec.
  std::vector<QuerySpec> MakeSpecs(size_t n) const {
    Rng rng(5);
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < n; ++i) {
      QuerySpec spec;
      spec.kind = i % 3 == 0   ? QueryKind::kForall
                  : i % 3 == 1 ? QueryKind::kExists
                               : QueryKind::kContinuous;
      spec.q = RandomQueryState(*world_->space, rng);
      spec.T = i % 2 == 0 ? T_ : TimeInterval{T_.start, T_.end - 2};
      spec.tau = spec.kind == QueryKind::kContinuous ? 0.3 : 0.05;
      spec.mc.num_worlds = 300;
      spec.mc.seed = 21 + i;
      specs.push_back(spec);
    }
    return specs;
  }

  /// Append an object observed at `tic` (reusing object 0's motion model and
  /// first observed state, which are valid by construction).
  ObjectId AddObjectAt(Tic tic, Tic end_tic) {
    const UncertainObject& donor = db().object(0);
    auto obs = ObservationSeq::Create(
        {{tic, donor.observations().items()[0].state}});
    EXPECT_TRUE(obs.ok());
    return db().AddObject(obs.MoveValue(), donor.matrix_ptr(), end_tic);
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(ServerTest, VersionCountsWritesAndValidatesThem) {
  const uint64_t v0 = db().version();
  EXPECT_GT(v0, 0u);  // one bump per seeded object
  AddObjectAt(T_.start, T_.end);
  EXPECT_EQ(db().version(), v0 + 1);

  const ObjectId last = static_cast<ObjectId>(db().size() - 1);
  const Tic end = db().object(last).last_tic();
  EXPECT_TRUE(db().ExtendLifetime(last, end + 4).ok());
  EXPECT_EQ(db().version(), v0 + 2);
  EXPECT_EQ(db().object(last).last_tic(), end + 4);

  // A no-op extension is not a write.
  EXPECT_TRUE(db().ExtendLifetime(last, end + 4).ok());
  EXPECT_EQ(db().version(), v0 + 2);

  // Shrinking and unknown ids are rejected without bumping the epoch.
  EXPECT_EQ(db().ExtendLifetime(last, end).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db().ExtendLifetime(static_cast<ObjectId>(db().size()), end + 9)
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db().version(), v0 + 2);
}

TEST_F(ServerTest, SnapshotPinsItsEpochAcrossConcurrentInserts) {
  const std::vector<QuerySpec> specs = MakeSpecs(6);
  DbSnapshot snap0 = db().Snapshot();
  // No index: both epochs then prune by alive-time filtering, which keeps
  // the influencer counts directly comparable across the insert.
  QuerySession session(snap0, nullptr);
  const std::vector<QueryOutcome> baseline = session.RunAll(specs);

  // An object alive throughout T_ lands in epoch k+1...
  AddObjectAt(T_.start, T_.end);
  EXPECT_EQ(snap0.version() + 1, db().version());
  EXPECT_EQ(db().Snapshot().size(), snap0.size() + 1);

  // ...and the epoch-k session keeps returning epoch-k bits.
  const std::vector<QueryOutcome> after = session.RunAll(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameOutcome(baseline[i], after[i])) << "spec " << i;
  }

  // A session over the new epoch sees the insert: the new object is alive
  // throughout every queried interval, so it joins the influencer sets.
  QuerySession fresh(db().Snapshot(), nullptr);
  const std::vector<QueryOutcome> next_epoch = fresh.RunAll(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    const size_t before_count = specs[i].kind == QueryKind::kContinuous
                                    ? baseline[i].pcnn.num_influencers
                                    : baseline[i].pnn.num_influencers;
    const size_t after_count = specs[i].kind == QueryKind::kContinuous
                                   ? next_epoch[i].pcnn.num_influencers
                                   : next_epoch[i].pnn.num_influencers;
    EXPECT_EQ(after_count, before_count + 1) << "spec " << i;
  }
}

TEST_F(ServerTest, ExtendLifetimeIsCopyOnWrite) {
  const ObjectId id = 0;
  const Tic old_end = db().object(id).last_tic();
  DbSnapshot snap0 = db().Snapshot();
  ASSERT_TRUE(db().ExtendLifetime(id, old_end + 6).ok());
  // The pinned epoch still holds the shorter object; the live one extended.
  EXPECT_EQ(snap0.object(id).last_tic(), old_end);
  EXPECT_EQ(db().object(id).last_tic(), old_end + 6);
  // The replacement starts with a cold posterior cache (its propagation
  // horizon changed), while the old object's stays warm for old snapshots.
  EXPECT_TRUE(snap0.object(id).EnsurePosterior().ok());
  EXPECT_TRUE(db().object(id).EnsurePosterior().ok());
}

TEST_F(ServerTest, StaleIndexIsDroppedNotTrusted) {
  const std::vector<QuerySpec> specs = MakeSpecs(4);
  AddObjectAt(T_.start, T_.end);  // index_ is now one epoch behind
  // Pin the legacy drop path: with the delta layer disabled, a stale index
  // must be discarded (and the drop counted), never trusted.
  SessionOptions no_delta;
  no_delta.delta_index = false;
  Counter drops;
  no_delta.stale_index_drops = &drops;
  QuerySession with_stale_index(db().Snapshot(), index_.get(), no_delta);
  QuerySession without_index(db().Snapshot(), nullptr);
  EXPECT_TRUE(with_stale_index.dropped_stale_index());
  EXPECT_EQ(drops.value(), 1u);
  const auto a = with_stale_index.RunAll(specs);
  const auto b = without_index.RunAll(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    // Identical — including the influencer counts, which a trusted stale
    // index would understate by the inserted object.
    EXPECT_TRUE(SameOutcome(a[i], b[i])) << "spec " << i;
  }
}

TEST_F(ServerTest, SessionCacheKeysOnEpochAndInterval) {
  SessionCache cache(2, SessionOptions{});
  DbSnapshot snap = db().Snapshot();
  const TimeInterval t1 = T_;
  const TimeInterval t2{T_.start, T_.end - 2};
  const TimeInterval t3{T_.start + 1, T_.end};

  const QuerySession* s1;
  {
    auto lease = cache.Checkout(snap, t1, index_.get());
    s1 = lease.get();
    EXPECT_EQ(lease->db().version(), snap.version());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);  // returned to the cache by the lease
  {
    auto lease = cache.Checkout(snap, t1, index_.get());  // hit, same session
    EXPECT_EQ(lease.get(), s1);
  }
  EXPECT_EQ(cache.stats().hits, 1u);

  // Capacity 2: t3 evicts the least recently used entry (t1 after t2 ran).
  cache.Checkout(snap, t2, index_.get());
  cache.Checkout(snap, t3, index_.get());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions_lru, 1u);
  cache.Checkout(snap, t1, index_.get());  // rebuilt: its entry was evicted
  EXPECT_EQ(cache.stats().misses, 4u);

  // A write opens a new epoch: lookups with the new snapshot miss, and
  // EvictStale drops every session pinned behind the live version.
  AddObjectAt(T_.start, T_.end);
  DbSnapshot snap2 = db().Snapshot();
  {
    auto lease = cache.Checkout(snap2, t1, index_.get());
    EXPECT_EQ(lease->db().version(), snap2.version());
  }
  EXPECT_EQ(cache.stats().misses, 5u);
  cache.EvictStale(snap2.version());
  EXPECT_EQ(cache.size(), 1u);  // only the epoch-current session survives
  EXPECT_GE(cache.stats().evictions_stale, 1u);
}

TEST_F(ServerTest, SessionCacheCheckoutIsExclusive) {
  SessionCache cache(2, SessionOptions{});
  DbSnapshot snap = db().Snapshot();

  // Two concurrent leases on one key: the second caller must get its own
  // session (scratch is single-lane), built as a counted duplicate.
  auto lease1 = cache.Checkout(snap, T_, index_.get());
  auto lease2 = cache.Checkout(snap, T_, index_.get());
  ASSERT_TRUE(lease1);
  ASSERT_TRUE(lease2);
  EXPECT_NE(lease1.get(), lease2.get());
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().busy_misses, 1u);
  EXPECT_EQ(cache.size(), 0u);  // both leased out, nothing idle

  const QuerySession* first = lease1.get();
  lease1.Release();
  EXPECT_FALSE(lease1);  // the lease handle is dead after release
  EXPECT_EQ(cache.size(), 1u);
  {
    auto lease3 = cache.Checkout(snap, T_, index_.get());  // hit on returned
    EXPECT_EQ(lease3.get(), first);
    EXPECT_EQ(cache.stats().hits, 1u);
  }
  lease2.Release();
  EXPECT_EQ(cache.size(), 2u);  // the duplicate is cached too (capacity 2)

  // A lease outstanding across EvictStale is dropped on return, not cached:
  // its epoch has passed.
  auto stale = cache.Checkout(snap, T_, index_.get());
  const uint64_t stale_before = cache.stats().evictions_stale;
  cache.EvictStale(snap.version() + 1);
  EXPECT_EQ(cache.size(), 0u);
  stale.Release();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_GT(cache.stats().evictions_stale, stale_before);
}

TEST_F(ServerTest, SharedLeaseJoinsInsteadOfDuplicating) {
  SessionCache cache(2, SessionOptions{});
  DbSnapshot snap = db().Snapshot();

  // Two shared checkouts on one key: the second *joins* the first — same
  // session, one build, no busy miss. This is the protocol that lets hot
  // groups stop paying duplicate builds.
  auto lease1 = cache.CheckoutShared(snap, T_, index_.get());
  ASSERT_TRUE(lease1);
  EXPECT_EQ(cache.stats().misses, 1u);
  auto lease2 = cache.CheckoutShared(snap, T_, index_.get());
  ASSERT_TRUE(lease2);
  EXPECT_EQ(lease1.get(), lease2.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().shared_joins, 1u);
  EXPECT_EQ(cache.stats().busy_misses, 0u);
  EXPECT_EQ(cache.size(), 0u);  // out on lease, not idle

  // An exclusive checkout cannot join a shared lease: duplicate, busy miss.
  {
    auto exclusive = cache.Checkout(snap, T_, index_.get());
    EXPECT_NE(exclusive.get(), lease1.get());
    EXPECT_EQ(cache.stats().busy_misses, 1u);
  }

  // Refcounted return: the first release keeps the session out, the last
  // one reinserts it at MRU — where a later shared checkout finds it idle.
  const QuerySession* session = lease1.get();
  lease1.Release();
  EXPECT_EQ(cache.stats().shared_joins, 1u);
  {
    auto lease3 = cache.CheckoutShared(snap, T_, index_.get());  // joins
    EXPECT_EQ(lease3.get(), session);
    EXPECT_EQ(cache.stats().shared_joins, 2u);
    lease2.Release();  // two holders left -> one
  }  // lease3 released: last holder, session goes idle
  EXPECT_EQ(cache.size(), 2u);  // the shared session + the exclusive dup
  {
    auto lease4 = cache.CheckoutShared(snap, T_, index_.get());
    EXPECT_EQ(lease4.get(), session);  // idle promotion, not a join
    EXPECT_EQ(cache.stats().shared_joins, 2u);
  }

  // A shared session whose epoch passes mid-lease is dropped on the last
  // release, exactly like the exclusive path.
  auto stale = cache.CheckoutShared(snap, T_, index_.get());
  cache.EvictStale(snap.version() + 1);
  const uint64_t stale_before = cache.stats().evictions_stale;
  stale.Release();
  EXPECT_GT(cache.stats().evictions_stale, stale_before);
}

TEST_F(ServerTest, HotGroupMorselsMatchSerialRunAllBitwise) {
  // One dominant (epoch, interval) group split into 1-spec morsels over 2
  // lanes with stealing forced on: whatever the claim/steal schedule, the
  // reassembled outcomes must equal the serial RunAll bytes. Submits are
  // paused into one admission queue so the whole stream flushes as full
  // batches of one hot group each.
  std::vector<QuerySpec> specs = MakeSpecs(18);
  for (QuerySpec& spec : specs) spec.T = T_;  // one hot interval
  QuerySession reference(db().Snapshot(), index_.get());
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);

  ServerOptions options;
  options.lanes = 2;
  options.steal = true;
  options.morsel_specs = 1;
  options.max_batch_size = 6;
  options.max_batch_delay_ms = 0.5;
  QueryServer server(db(), index_.get(), options);
  server.Pause();
  std::vector<std::future<QueryOutcome>> futures;
  for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
  server.Resume();
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameOutcome(futures[i].get(), expected[i])) << "spec " << i;
  }
  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, specs.size());
  // 1-spec morsels: exactly one morsel per request, across all lanes.
  EXPECT_EQ(stats.morsels_executed(), specs.size());
  uint64_t lane_requests = 0;
  for (const LaneStats& lane : stats.lanes) lane_requests += lane.requests;
  EXPECT_EQ(lane_requests, specs.size());
}

TEST_F(ServerTest, IdleLaneStealsFromDominantGroup) {
  // The tail-latency regression test for the group-granularity scheduler:
  // one dominant group of heavy specs next to a tiny one. At group
  // granularity the dominant group pins ONE lane while the other goes idle
  // after its tiny group (steals == 0, one lane owns every heavy request);
  // with morsel stealing the idle lane must take half-ranges of the hot
  // group (steals >= 1 and both lanes execute requests). The heavy specs
  // are hundreds of milliseconds each, the idle lane wakes in microseconds
  // — the margin is ~5 orders of magnitude, so this is timing-robust.
  std::vector<QuerySpec> heavy = MakeSpecs(6);
  for (QuerySpec& spec : heavy) {
    spec.kind = QueryKind::kForall;
    spec.T = T_;
    spec.backend = ExecutorKind::kMonteCarlo;
    spec.mc.num_worlds = 6000;
  }
  QuerySpec tiny = MakeSpecs(1)[0];
  tiny.kind = QueryKind::kForall;
  tiny.T = TimeInterval{T_.start, T_.end - 2};
  tiny.backend = ExecutorKind::kMonteCarlo;
  tiny.mc.num_worlds = 50;

  const auto run = [&](bool steal) {
    ServerOptions options;
    options.lanes = 2;
    options.steal = steal;
    options.morsel_specs = 1;
    options.max_batch_size = 7;
    options.max_batch_delay_ms = 1.0;
    QueryServer server(db(), index_.get(), options);
    server.Pause();  // everything flushes as one batch: 2 groups
    std::vector<std::future<QueryOutcome>> futures;
    for (const QuerySpec& spec : heavy) futures.push_back(server.Submit(spec));
    futures.push_back(server.Submit(tiny));
    server.Resume();
    for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
    server.Stop();
    return server.Stats();
  };

  const ServerStats nosteal = run(false);
  // Group granularity: whole groups stick to their adopting lane — the six
  // heavy requests all executed where the dominant group landed.
  EXPECT_EQ(nosteal.lane_steals(), 0u);
  uint64_t max_lane_requests = 0;
  for (const LaneStats& lane : nosteal.lanes) {
    max_lane_requests = std::max(max_lane_requests, lane.requests);
  }
  EXPECT_GE(max_lane_requests, heavy.size());

  const ServerStats steal = run(true);
  // Morsel scheduling: the lane that finished the tiny group steals from
  // the dominant one instead of idling.
  EXPECT_GE(steal.lane_steals(), 1u);
  for (const LaneStats& lane : steal.lanes) {
    EXPECT_GE(lane.requests, 1u) << "a lane sat idle beside a hot group";
  }
}

TEST_F(ServerTest, ServerMatchesSerialRunAllAtTwoLanesFourClients) {
  const std::vector<QuerySpec> specs = MakeSpecs(16);
  // Reference: strictly serial session over the same epoch (threads = 1).
  QuerySession reference(db().Snapshot(), index_.get());
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);

  ServerOptions options;
  options.lanes = 2;
  options.threads = 2;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 2.0;
  QueryServer server(db(), index_.get(), options);
  std::vector<std::future<QueryOutcome>> futures(specs.size());
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (size_t i = static_cast<size_t>(c); i < specs.size(); i += 4) {
        futures[i] = server.Submit(specs[i]);
      }
    });
  }
  for (auto& t : clients) t.join();
  for (size_t i = 0; i < specs.size(); ++i) {
    EXPECT_TRUE(SameOutcome(futures[i].get(), expected[i])) << "spec " << i;
  }
  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, specs.size());
  EXPECT_EQ(stats.admitted, specs.size());
  EXPECT_EQ(stats.completed, specs.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(stats.latency_micros.count(), specs.size());
  EXPECT_EQ(stats.queue_micros.count(), specs.size());
  // Per-lane accounting covers every executed morsel and every request.
  ASSERT_EQ(stats.lanes.size(), 2u);
  uint64_t lane_batches = 0, lane_requests = 0, lane_morsels = 0;
  for (const LaneStats& lane : stats.lanes) {
    lane_batches += lane.batches;
    lane_requests += lane.requests;
    lane_morsels += lane.morsels;
    EXPECT_EQ(lane.exec_micros.count(), lane.morsels);
  }
  EXPECT_GE(lane_batches, stats.batches);  // >=: batches split per interval
  EXPECT_GE(lane_morsels, lane_batches);   // every group is >= one morsel
  EXPECT_EQ(lane_requests, specs.size());
  EXPECT_EQ(stats.lane_queue_depth, 0u);  // drained by Stop
  EXPECT_GE(stats.lane_queue_peak, 1u);
}

TEST_F(ServerTest, StopDrainsEveryAdmittedRequest) {
  const std::vector<QuerySpec> specs = MakeSpecs(10);
  ServerOptions options;
  options.lanes = 2;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 50.0;  // Stop must not wait out the window
  QueryServer server(db(), index_.get(), options);
  server.Pause();  // requests pile up: the drain below is deterministic
  std::vector<std::future<QueryOutcome>> futures;
  for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
  server.Stop();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(futures[i].get().status.ok()) << "request " << i;
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.admitted, specs.size());
  EXPECT_EQ(stats.completed, specs.size());
  EXPECT_GE(stats.flush_drain, 1u);
  EXPECT_EQ(stats.lane_queue_depth, 0u);
  uint64_t lane_requests = 0;
  for (const LaneStats& lane : stats.lanes) lane_requests += lane.requests;
  EXPECT_EQ(lane_requests, specs.size());
}

TEST_F(ServerTest, OversizedBatchDoesNotStallSmallBatchFlush) {
  // Regression test for the pre-lane inline dispatcher: there, the thread
  // that flushed a batch also executed it, so one oversized batch blocked
  // the admission window and every batch behind it until it finished. With
  // execution lanes, the flush cadence is independent of execution time:
  // the small batch below must flush on its deadline and complete while the
  // oversized batch is still running on the other lane.
  ServerOptions options;
  options.lanes = 2;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 1.0;
  QueryServer server(db(), index_.get(), options);

  // One oversized batch: heavy Monte-Carlo work, hundreds of milliseconds.
  std::vector<QuerySpec> big = MakeSpecs(4);
  for (QuerySpec& spec : big) {
    spec.kind = QueryKind::kForall;
    spec.T = T_;
    spec.backend = ExecutorKind::kMonteCarlo;
    spec.mc.num_worlds = 50000;
  }
  // One small, fast request over a different interval (its own group).
  QuerySpec small = MakeSpecs(1)[0];
  small.kind = QueryKind::kForall;
  small.T = TimeInterval{T_.start, T_.end - 2};
  small.backend = ExecutorKind::kMonteCarlo;
  small.mc.num_worlds = 50;

  // Pause so all four oversized specs flush as exactly one full batch.
  server.Pause();
  std::vector<std::future<QueryOutcome>> big_futures;
  for (const QuerySpec& spec : big) big_futures.push_back(server.Submit(spec));
  server.Resume();
  std::future<QueryOutcome> small_future = server.Submit(small);

  EXPECT_TRUE(small_future.get().status.ok());
  for (auto& f : big_futures) EXPECT_TRUE(f.get().status.ok());

  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_EQ(stats.flush_full, 1u);      // the oversized batch
  EXPECT_GE(stats.flush_deadline, 1u);  // the small one, on time
  // The regression is asserted through the server's own clocks, not through
  // instantaneous future polling — robust against the thread scheduling of
  // an oversubscribed sanitizer CI runner. On the pre-lane inline
  // dispatcher both checks fail: the small request's flush (and hence its
  // whole life) would sit behind the oversized batch's execution, pushing
  // queue_micros.max() and latency_micros.min() up to max_exec.
  double max_exec = 0.0;
  for (const LaneStats& lane : stats.lanes) {
    max_exec = std::max(max_exec, lane.exec_micros.max());
  }
  // Admission-to-flush latency stayed decoupled from execution: even the
  // slowest flush was far quicker than the oversized batch's execution.
  EXPECT_LT(stats.queue_micros.max(), max_exec / 2.0);
  // And the small request (the fastest end-to-end, hence min()) completed
  // well inside the oversized batch's execution window.
  EXPECT_LT(stats.latency_micros.min(), max_exec / 2.0);
}

TEST_F(ServerTest, ServerRejectsWhenAdmissionQueueIsFull) {
  const std::vector<QuerySpec> specs = MakeSpecs(8);
  ServerOptions options;
  options.queue_capacity = 3;
  options.max_batch_size = 64;
  options.max_batch_delay_ms = 5.0;
  QueryServer server(db(), index_.get(), options);
  server.Pause();  // queue fills deterministically while dispatch holds

  std::vector<std::future<QueryOutcome>> futures;
  for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
  // First 3 admitted, the rest bounced immediately with kResourceLimit.
  for (size_t i = 3; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(futures[i].get().status.code(), StatusCode::kResourceLimit);
  }
  server.Resume();
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(futures[i].get().status.ok()) << "request " << i;
  }
  server.Stop();
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 8u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected, 5u);
  // Every rejection lands in exactly one split bucket (none were draining —
  // the server was live throughout the burst).
  EXPECT_EQ(stats.rejected,
            stats.rejected_queue_full + stats.rejected_shed);
  EXPECT_EQ(stats.rejected_draining, 0u);
  EXPECT_EQ(stats.completed, 3u);

  // After Stop, submits bounce with kResourceLimit — the same backpressure
  // code clients already retry on, not a client-bug code like
  // kInvalidArgument (a draining server is an operational condition).
  auto late = server.Submit(specs[0]);
  ASSERT_EQ(late.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(late.get().status.code(), StatusCode::kResourceLimit);
  const ServerStats after = server.Stats();
  EXPECT_EQ(after.rejected_draining, 1u);
  EXPECT_EQ(after.rejected, 6u);
}

TEST_F(ServerTest, ConcurrentWritesNeverTearServedQueries) {
  // The writer only touches lifetimes/objects *outside* every queried
  // interval, so all epochs agree on the correct answer — any deviation in
  // a served outcome would mean a torn read of the live database.
  const std::vector<QuerySpec> specs = MakeSpecs(6);
  // No index on either side: sessions over post-write epochs would drop a
  // pre-write index, and pruning sets must match for bitwise comparison.
  QuerySession reference(db().Snapshot(), nullptr);
  const std::vector<QueryOutcome> expected = reference.RunAll(specs);

  ServerOptions options;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 0.5;
  QueryServer server(db(), nullptr, options);

  std::thread writer([&] {
    for (int i = 0; i < 12; ++i) {
      AddObjectAt(T_.end + 8, T_.end + 12);  // never alive inside T_ or sub-T
    }
  });
  std::vector<std::future<QueryOutcome>> futures;
  for (int round = 0; round < 4; ++round) {
    for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
  }
  writer.join();
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_TRUE(SameOutcome(futures[i].get(), expected[i % specs.size()]))
        << "request " << i;
  }

  // Epoch-keyed invalidation, pinned deterministically: all in-flight work
  // is drained, so the cache holds sessions at epochs <= the current one;
  // one more write then forces the next batch to miss on the new version
  // and to reap at least one stale-epoch session.
  const SessionCacheStats before = server.Stats().cache;
  AddObjectAt(T_.end + 8, T_.end + 12);
  std::vector<std::future<QueryOutcome>> late;
  for (const QuerySpec& spec : specs) late.push_back(server.Submit(spec));
  for (size_t i = 0; i < late.size(); ++i) {
    EXPECT_TRUE(SameOutcome(late[i].get(), expected[i])) << "late " << i;
  }
  server.Stop();
  const SessionCacheStats after = server.Stats().cache;
  EXPECT_GT(after.misses, before.misses);
  EXPECT_GT(after.evictions_stale, before.evictions_stale);
}

TEST_F(ServerTest, ZeroBatchSizeIsClampedNotStarved) {
  ServerOptions options;
  options.max_batch_size = 0;  // misconfiguration must not starve requests
  options.max_batch_delay_ms = 0.1;
  QueryServer server(db(), index_.get(), options);
  auto future = server.Submit(MakeSpecs(1)[0]);
  EXPECT_TRUE(future.get().status.ok());
}

// With ServerOptions::trace on, one request must be followable
// admission-to-finalize: at least six distinct span names carry its id
// (the ISSUE acceptance bar, checked here without the bench harness).
TEST_F(ServerTest, TraceFollowsRequestAcrossLifecycle) {
  const std::vector<QuerySpec> specs = MakeSpecs(6);
  ServerOptions options;
  options.trace = true;
  {
    QueryServer server(db(), index_.get(), options);
    std::vector<std::future<QueryOutcome>> futures;
    for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
    for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
    server.Stop();  // joins lanes and disables tracing
  }
  const std::vector<trace::TraceEvent> events = trace::Snapshot();
  ASSERT_FALSE(events.empty());
  std::vector<std::string> names_for_req1;
  for (const trace::TraceEvent& event : events) {
    if (event.arg_name == nullptr || std::string(event.arg_name) != "req") {
      continue;
    }
    if (event.arg != 1) continue;
    const std::string name = event.name;
    if (std::find(names_for_req1.begin(), names_for_req1.end(), name) ==
        names_for_req1.end()) {
      names_for_req1.push_back(name);
    }
  }
  EXPECT_GE(names_for_req1.size(), 6u)
      << "request 1 spans: " << names_for_req1.size();
  for (const char* required : {"admit", "queue", "finalize"}) {
    EXPECT_NE(std::find(names_for_req1.begin(), names_for_req1.end(),
                        std::string(required)),
              names_for_req1.end())
        << "missing span " << required;
  }
  trace::Reset();
}

TEST_F(ServerTest, StatsRenderAsJson) {
  const std::vector<QuerySpec> specs = MakeSpecs(5);
  QueryServer server(db(), index_.get(), ServerOptions{});
  std::vector<std::future<QueryOutcome>> futures;
  for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  server.Stop();
  const std::string json = server.Stats().ToJson();
  for (const char* key :
       {"\"submitted\":5", "\"completed\":5", "\"rejected\":0",
        "\"rejected_queue_full\":0", "\"rejected_shed\":0",
        "\"rejected_draining\":0", "\"expired_in_queue\":0",
        "\"expired_on_lane\":0", "\"degraded_requests\":0",
        "\"overload_regime\":", "\"session_build_failures\":0", "\"batches\":",
        "\"cache_misses\":", "\"cache_busy_misses\":",
        "\"cache_shared_joins\":", "\"latency_us\":",
        "\"queue_us\":", "\"p50\":", "\"p99\":", "\"lane_queue_depth\":",
        "\"lane_queue_peak\":", "\"lane_steals\":", "\"morsels_executed\":",
        "\"arena_builds\":", "\"arena_spec_reuses\":", "\"arena_bytes\":",
        "\"early_stops\":", "\"worlds_saved\":", "\"worlds_sampled\":",
        "\"trace_dropped\":", "\"lane_idle_us\":",
        "\"lanes\":[{", "\"exec_us\":", "\"morsels\":", "\"steals\":",
        "\"arena_hits\":", "\"idle_us\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << json << "\nmissing " << key;
  }
}

}  // namespace
}  // namespace ust
