#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "query/pcnn.h"
#include "test_world.h"
#include "util/stats.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;

MonteCarloOptions Opts(size_t worlds, uint64_t seed = 42) {
  MonteCarloOptions o;
  o.num_worlds = worlds;
  o.seed = seed;
  return o;
}

// Finds an entry with the given object and timestamp set.
const PcnnEntry* Find(const std::vector<PcnnEntry>& entries, ObjectId o,
                      std::vector<Tic> tics) {
  for (const auto& e : entries) {
    if (e.object == o && e.tics == tics) return &e;
  }
  return nullptr;
}

TEST(PcnnTest, Figure1WorkedExample) {
  Figure1World world = MakeFigure1World();
  auto result = PcnnQuery(*world.db, {world.o1, world.o2},
                          {world.o1, world.o2}, world.q, world.T, 0.1,
                          Opts(20000));
  ASSERT_TRUE(result.ok());
  const auto& entries = result.value().entries;
  // o1 qualifies with the full interval {1,2,3} (P = 0.75).
  const PcnnEntry* full = Find(entries, world.o1, {1, 2, 3});
  ASSERT_NE(full, nullptr);
  EXPECT_NEAR(full->prob, 0.75, HoeffdingEpsilon(20000, 0.01));
  // o2 qualifies with {2,3} (P = 0.125) but not with any set containing 1.
  EXPECT_NE(Find(entries, world.o2, {2, 3}), nullptr);
  EXPECT_EQ(Find(entries, world.o2, {1}), nullptr);
  EXPECT_EQ(Find(entries, world.o2, {1, 2}), nullptr);
  EXPECT_EQ(Find(entries, world.o2, {1, 2, 3}), nullptr);
  // Maximal filtering reproduces the paper's answer set.
  auto maximal = FilterMaximal(entries);
  std::set<std::pair<ObjectId, std::vector<Tic>>> got;
  for (const auto& e : maximal) got.insert({e.object, e.tics});
  std::set<std::pair<ObjectId, std::vector<Tic>>> expected = {
      {world.o1, {1, 2, 3}}, {world.o2, {2, 3}}};
  EXPECT_EQ(got, expected);
}

TEST(PcnnTest, AntiMonotonicityHoldsInOutput) {
  Figure1World world = MakeFigure1World();
  auto table = ComputeNnTable(*world.db, {world.o1, world.o2}, world.q,
                              world.T, Opts(5000));
  ASSERT_TRUE(table.ok());
  PcnnResult result = PcnnForObject(table.value(), 0, 0.05);
  // Every subset of a qualifying set must also qualify (Apriori soundness).
  std::set<std::vector<Tic>> sets;
  for (const auto& e : result.entries) sets.insert(e.tics);
  for (const auto& tics : sets) {
    if (tics.size() <= 1) continue;
    for (size_t skip = 0; skip < tics.size(); ++skip) {
      std::vector<Tic> subset;
      for (size_t i = 0; i < tics.size(); ++i) {
        if (i != skip) subset.push_back(tics[i]);
      }
      EXPECT_TRUE(sets.count(subset)) << "missing subset of a qualifying set";
    }
  }
  // And probabilities decrease with set growth.
  for (const auto& e : result.entries) {
    for (const auto& f : result.entries) {
      if (e.tics.size() < f.tics.size() &&
          std::includes(f.tics.begin(), f.tics.end(), e.tics.begin(),
                        e.tics.end())) {
        EXPECT_GE(e.prob + 1e-12, f.prob);
      }
    }
  }
}

TEST(PcnnTest, HighTauShrinksResult) {
  Figure1World world = MakeFigure1World();
  auto table = ComputeNnTable(*world.db, {world.o1, world.o2}, world.q,
                              world.T, Opts(5000));
  ASSERT_TRUE(table.ok());
  size_t prev = static_cast<size_t>(-1);
  for (double tau : {0.05, 0.3, 0.8, 1.1}) {
    PcnnResult r = PcnnForObject(table.value(), 0, tau);
    EXPECT_LE(r.entries.size(), prev);
    prev = r.entries.size();
  }
  // tau > 1 yields nothing.
  EXPECT_EQ(prev, 0u);
}

TEST(PcnnTest, TauZeroReturnsFullLattice) {
  Figure1World world = MakeFigure1World();
  auto table = ComputeNnTable(*world.db, {world.o1, world.o2}, world.q,
                              world.T, Opts(2000));
  ASSERT_TRUE(table.ok());
  // o1 is NN with positive probability at every tic, so tau=0 returns all
  // 2^3 - 1 nonempty subsets of T.
  PcnnResult r = PcnnForObject(table.value(), 0, 0.0);
  EXPECT_EQ(r.entries.size(), 7u);
}

TEST(PcnnTest, ValidationCountersTrackWork) {
  Figure1World world = MakeFigure1World();
  auto table = ComputeNnTable(*world.db, {world.o1, world.o2}, world.q,
                              world.T, Opts(2000));
  ASSERT_TRUE(table.ok());
  PcnnResult low = PcnnForObject(table.value(), 0, 0.0);
  PcnnResult high = PcnnForObject(table.value(), 0, 0.9);
  EXPECT_GT(low.validations, high.validations);
  EXPECT_GE(low.candidates_generated, low.entries.size());
  // Level 1 always validates |T| singletons.
  EXPECT_GE(high.validations, world.T.length());
}

TEST(PcnnTest, DisconnectedTimestampSetsAllowed) {
  // An object that is NN at tics 1 and 3 but not 2 yields the set {1,3}.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 5}, {0, 2}});
  // a oscillates: near, far, near. b stays at distance 2.
  auto ma = testing::MakeMatrix(
      3, {{{1, 1.0}}, {{0, 1.0}}, {{2, 1.0}}});
  auto mb = testing::MakeMatrix(3, {{{0, 1.0}}, {{1, 1.0}}, {{2, 1.0}}});
  TrajectoryDatabase db(space);
  auto obs_a = ObservationSeq::Create({{1, 0}});
  auto obs_b = ObservationSeq::Create({{1, 2}});
  ASSERT_TRUE(obs_a.ok() && obs_b.ok());
  ObjectId a = db.AddObject(obs_a.MoveValue(), ma, 3);
  ObjectId b = db.AddObject(obs_b.MoveValue(), mb, 3);
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  auto result = PcnnQuery(db, {a, b}, {a, b}, q, {1, 3}, 0.5, Opts(200));
  ASSERT_TRUE(result.ok());
  const PcnnEntry* disconnected = Find(result.value().entries, a, {1, 3});
  ASSERT_NE(disconnected, nullptr);
  EXPECT_DOUBLE_EQ(disconnected->prob, 1.0);
  EXPECT_EQ(Find(result.value().entries, a, {1, 2, 3}), nullptr);
  // b wins only tic 2.
  EXPECT_NE(Find(result.value().entries, b, {2}), nullptr);
  EXPECT_EQ(Find(result.value().entries, b, {2, 3}), nullptr);
}

TEST(PcnnTest, FilterMaximalKeepsIncomparableSets) {
  std::vector<PcnnEntry> entries = {
      {0, {1}, 0.9}, {0, {1, 2}, 0.8}, {0, {3}, 0.7}, {1, {1}, 0.6}};
  auto maximal = FilterMaximal(entries);
  // {1} of object 0 is dominated by {1,2}; {3} and object 1's {1} survive.
  ASSERT_EQ(maximal.size(), 3u);
  EXPECT_EQ(maximal[0].tics, (std::vector<Tic>{1, 2}));
  EXPECT_EQ(maximal[1].tics, (std::vector<Tic>{3}));
  EXPECT_EQ(maximal[2].object, 1u);
}

TEST(PcnnTest, CandidateNotAmongParticipantsRejected) {
  Figure1World world = MakeFigure1World();
  auto result = PcnnQuery(*world.db, {world.o1}, {world.o2}, world.q, world.T,
                          0.5, Opts(10));
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace ust
