// Tests for the event tracer (util/trace.h) and the metrics registry
// (util/metrics.h): concurrent recording stays balanced and per-thread
// monotonic, ring wrap drops oldest-first and is counted, disabled probes
// record nothing, and every JSON export parses (validated by the minimal
// JSON checker below, so a malformed dump fails here before it fails in
// chrome://tracing).
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace ust {
namespace {

// ------------------------------------------------- minimal JSON checker ---
// Recursive-descent validator for the JSON we emit (objects, arrays,
// strings with escapes, numbers, true/false/null). Returns true iff `s` is
// one complete JSON value.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  bool Value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (Peek() == '}') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (Peek() != ':') return false;
      ++pos_;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (Peek() == ']') { ++pos_; return true; }
    for (;;) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Peek() == ',') { ++pos_; continue; }
      if (Peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    const size_t start = pos_;
    if (Peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  size_t pos_ = 0;
};

bool IsValidJson(const std::string& s) { return JsonChecker(s).Valid(); }

TEST(JsonCheckerTest, AcceptsAndRejects) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("{\"a\":1,\"b\":[{\"c\":\"d\\\"e\"},-2.5e3,null]}"));
  EXPECT_FALSE(IsValidJson("{\"a\":1,}"));
  EXPECT_FALSE(IsValidJson("{\"a\":}"));
  EXPECT_FALSE(IsValidJson("[1,2"));
  EXPECT_FALSE(IsValidJson("{\"a\":01x}"));
}

// ------------------------------------------------------------- trace -------

TEST(TraceTest, DisabledRecordsNothing) {
  trace::Disable();
  trace::Reset();
  ASSERT_FALSE(trace::Enabled());
  { UST_TRACE_SCOPE("disabled_span", 1); }
  trace::Instant("disabled_instant", 2);
  trace::Complete("disabled_complete", std::chrono::steady_clock::now(),
                  std::chrono::steady_clock::now(), 3);
  EXPECT_EQ(trace::RecordedCount(), 0u);
  EXPECT_EQ(trace::DroppedCount(), 0u);
  EXPECT_TRUE(trace::Snapshot().empty());
}

TEST(TraceTest, ConcurrentSpansBalancedAndMonotonic) {
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 100;
  trace::Disable();
  trace::Enable(1 << 12);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        const uint64_t req = static_cast<uint64_t>(t * 1000 + i);
        { UST_TRACE_SCOPE("work", req); }
        trace::Instant("tick", req);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  trace::Disable();

  const std::vector<trace::TraceEvent> events = trace::Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kThreads) * 2 * kSpansPerThread);
  EXPECT_EQ(trace::DroppedCount(), 0u);

  // Per recording thread: balanced phases and non-decreasing timestamps
  // (each ring is written in emission order; the emitting loop is
  // sequential, so time never runs backwards within a tid).
  std::vector<size_t> complete_count, instant_count;
  std::vector<uint64_t> last_ts;
  for (const trace::TraceEvent& event : events) {
    if (event.tid >= last_ts.size()) {
      complete_count.resize(event.tid + 1, 0);
      instant_count.resize(event.tid + 1, 0);
      last_ts.resize(event.tid + 1, 0);
    }
    if (event.phase == 'X') {
      ++complete_count[event.tid];
      EXPECT_STREQ(event.name, "work");
    } else {
      ASSERT_EQ(event.phase, 'i');
      ++instant_count[event.tid];
      EXPECT_STREQ(event.name, "tick");
    }
    EXPECT_GE(event.ts_ns, last_ts[event.tid]);
    last_ts[event.tid] = event.ts_ns;
  }
  size_t active_tids = 0;
  for (size_t tid = 0; tid < last_ts.size(); ++tid) {
    if (complete_count[tid] + instant_count[tid] == 0) continue;
    ++active_tids;
    EXPECT_EQ(complete_count[tid], static_cast<size_t>(kSpansPerThread));
    EXPECT_EQ(instant_count[tid], static_cast<size_t>(kSpansPerThread));
  }
  EXPECT_EQ(active_tids, static_cast<size_t>(kThreads));
}

TEST(TraceTest, RingWrapDropsOldestAndCounts) {
  constexpr uint64_t kCapacity = 16;  // Enable clamps below 16 up to 16
  constexpr uint64_t kEmitted = 50;
  trace::Disable();
  trace::Enable(kCapacity);
  for (uint64_t i = 0; i < kEmitted; ++i) {
    trace::Instant("wrap", i);
  }
  trace::Disable();
  EXPECT_EQ(trace::RecordedCount(), kCapacity);
  EXPECT_EQ(trace::DroppedCount(), kEmitted - kCapacity);
  const std::vector<trace::TraceEvent> events = trace::Snapshot();
  ASSERT_EQ(events.size(), kCapacity);
  // The survivors are exactly the newest kCapacity events, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, kEmitted - kCapacity + i);
  }
}

TEST(TraceTest, ExportedJsonParsesAndCarriesSpans) {
  trace::Disable();
  trace::Enable(1 << 10);
  {
    UST_TRACE_SCOPE("outer", 7);
    trace::Instant("marker", 7, trace::kReqArg, "hot");
  }
  {
    trace::Span span("tagged", 8);
    span.set_tag("monte_carlo");
  }
  trace::Disable();
  const std::string json = trace::ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"marker\""), std::string::npos);
  EXPECT_NE(json.find("\"req\":7"), std::string::npos);
  EXPECT_NE(json.find("\"tag\":\"monte_carlo\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
}

TEST(TraceTest, EnableResetsPriorRecording) {
  trace::Disable();
  trace::Enable(64);
  trace::Instant("before", 1);
  trace::Disable();
  ASSERT_EQ(trace::RecordedCount(), 1u);
  trace::Enable(64);
  trace::Disable();
  EXPECT_EQ(trace::RecordedCount(), 0u);
  EXPECT_EQ(trace::DroppedCount(), 0u);
}

// ------------------------------------------------------------ metrics ------

TEST(MetricsTest, InstrumentsReadBack) {
  Counter counter;
  counter.Increment();
  counter.Increment(4);
  EXPECT_EQ(counter.value(), 5u);

  Gauge gauge;
  gauge.Set(7);
  gauge.Add(-2);
  EXPECT_EQ(gauge.value(), 5);
  gauge.MaxWith(3);
  EXPECT_EQ(gauge.value(), 5);
  gauge.MaxWith(11);
  EXPECT_EQ(gauge.value(), 11);

  HistogramMetric histogram;
  histogram.Record(10.0);
  histogram.Record(20.0);
  EXPECT_EQ(histogram.Snapshot().count(), 2u);
}

TEST(MetricsTest, RegistryEnumeratesInRegistrationOrder) {
  MetricRegistry registry;
  Counter* a = registry.NewCounter("alpha");
  Gauge* b = registry.NewGauge("beta");
  HistogramMetric* c = registry.NewHistogram("gamma");
  a->Increment(3);
  b->Set(-4);
  c->Record(2.5);

  const std::vector<MetricSample> samples = registry.Snapshot();
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].name, "alpha");
  EXPECT_EQ(samples[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(samples[0].counter, 3u);
  EXPECT_EQ(samples[1].name, "beta");
  EXPECT_EQ(samples[1].gauge, -4);
  EXPECT_EQ(samples[2].name, "gamma");
  EXPECT_EQ(samples[2].histogram.count(), 1u);
  EXPECT_EQ(registry.CounterValue("alpha"), 3u);
  EXPECT_EQ(registry.CounterValue("absent"), 0u);
  EXPECT_EQ(registry.size(), 3u);
}

TEST(MetricsTest, ExternallyOwnedInstrumentsRegister) {
  Counter external;
  MetricRegistry registry;
  registry.RegisterCounter("external", &external);
  external.Increment(9);
  EXPECT_EQ(registry.CounterValue("external"), 9u);
}

TEST(MetricsTest, RegistryJsonParses) {
  MetricRegistry registry;
  registry.NewCounter("hits")->Increment(2);
  registry.NewGauge("depth")->Set(-1);
  registry.NewHistogram("lat_us")->Record(123.0);
  const std::string json = registry.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"hits\":2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"lat_us\":{"), std::string::npos);
}

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  MetricRegistry registry;
  Counter* counter = registry.NewCounter("total");
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

}  // namespace
}  // namespace ust
