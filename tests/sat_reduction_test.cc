// The paper's Lemma 1 proves P∃NN NP-hard by reducing k-SAT to it: each
// boolean variable becomes an uncertain object with a *time-inhomogeneous*
// Markov chain, each clause becomes a timestamp, and the formula is
// satisfiable iff there exists a possible world in which object o is never
// the nearest neighbor — i.e. iff P∃NN(o, q, D, T) < 1.
//
// This test implements that construction (Figure 2 of the paper) on top of
// PiecewiseModel + the inhomogeneous forward-backward adaptation and checks
// the equivalence against a brute-force SAT solver on several formulas,
// including the paper's worked example
//   E = (¬x1 ∨ x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ x4) ∧ (x1 ∨ ¬x2).
#include <gtest/gtest.h>

#include <vector>

#include "model/adaptation.h"
#include "query/exact.h"
#include "test_world.h"

namespace ust {
namespace {

// A literal: variable index plus sign; a clause: disjunction of literals.
struct Literal {
  int var;
  bool positive;
};
using Clause = std::vector<Literal>;
using Formula = std::vector<Clause>;

bool EvaluateClause(const Clause& clause, const std::vector<bool>& assign) {
  for (const Literal& lit : clause) {
    if (assign[lit.var] == lit.positive) return true;
  }
  return false;
}

bool BruteForceSatisfiable(const Formula& formula, int num_vars) {
  for (uint32_t mask = 0; mask < (1u << num_vars); ++mask) {
    std::vector<bool> assign(num_vars);
    for (int v = 0; v < num_vars; ++v) assign[v] = (mask >> v) & 1;
    bool all = true;
    for (const Clause& c : formula) {
      if (!EvaluateClause(c, assign)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// State layout (query point at the origin): s1, s2 closer to q than o,
// s3, s4 farther, plus the shared start state s0.
constexpr StateId kS1 = 0, kS2 = 1, kS3 = 2, kS4 = 3, kS0 = 4;

StateSpace MakeSatSpace() {
  return StateSpace({{0, 1}, {0, 2}, {0, 4}, {0, 5}, {0, 10}});
}

// Track state of variable `var` at clause-time j (1-based) under the given
// truth value. True-track lives on {s2, s4}, false-track on {s1, s3}.
StateId TrackState(const Formula& formula, int var, bool value, int j) {
  const Clause& clause = formula[static_cast<size_t>(j - 1)];
  bool satisfies = false;
  for (const Literal& lit : clause) {
    if (lit.var == var && lit.positive == value) satisfies = true;
  }
  if (value) return satisfies ? kS2 : kS4;
  return satisfies ? kS1 : kS3;
}

// The time-inhomogeneous chain of one variable-object: at t=0 it sits at s0
// and branches 50/50 onto the true/false track; afterwards each track moves
// deterministically through its per-clause states.
Result<PiecewiseModel> VariableModel(const Formula& formula, int var) {
  const int m = static_cast<int>(formula.size());
  std::vector<std::pair<Tic, TransitionMatrixPtr>> pieces;
  {
    // M(0): s0 -> {true-track(1), false-track(1)}.
    std::vector<std::vector<TransitionMatrix::Entry>> rows(5);
    StateId t1 = TrackState(formula, var, true, 1);
    StateId f1 = TrackState(formula, var, false, 1);
    rows[kS0] = {{t1, 0.5}, {f1, 0.5}};
    pieces.push_back({0, testing::MakeMatrix(5, std::move(rows))});
  }
  for (int j = 1; j < m; ++j) {
    // M(j): track(j) -> track(j+1), deterministic; other states self-loop.
    std::vector<std::vector<TransitionMatrix::Entry>> rows(5);
    StateId tj = TrackState(formula, var, true, j);
    StateId tn = TrackState(formula, var, true, j + 1);
    StateId fj = TrackState(formula, var, false, j);
    StateId fn = TrackState(formula, var, false, j + 1);
    rows[tj] = {{tn, 1.0}};
    rows[fj] = {{fn, 1.0}};
    pieces.push_back({static_cast<Tic>(j), testing::MakeMatrix(5, std::move(rows))});
  }
  return PiecewiseModel::Create(std::move(pieces));
}

// P∃NN(o) over T = [1, m] where o is pinned strictly between the track
// bands, computed by enumerating each object's posterior trajectories and
// crossing them (possible-worlds semantics).
double ExistsNnProbOfO(const Formula& formula, int num_vars) {
  const int m = static_cast<int>(formula.size());
  StateSpace space = MakeSatSpace();
  const double d_o = 3.0;  // o's distance to q: between {1,2} and {4,5}
  std::vector<std::vector<WeightedTrajectory>> worlds;
  for (int var = 0; var < num_vars; ++var) {
    auto model = VariableModel(formula, var);
    UST_CHECK(model.ok());
    auto obs = ObservationSeq::Create({{0, kS0}});
    UST_CHECK(obs.ok());
    auto posterior = AdaptTransitionMatrices(model.value(), obs.value(),
                                             static_cast<Tic>(m));
    UST_CHECK(posterior.ok());
    auto enumerated =
        EnumerateWindowTrajectories(posterior.value(), 1, m, 1000);
    UST_CHECK(enumerated.ok());
    worlds.push_back(enumerated.MoveValue());
  }
  // Cross product over per-object trajectory choices.
  std::vector<size_t> choice(worlds.size(), 0);
  double p_exists = 0.0;
  while (true) {
    double p_world = 1.0;
    for (size_t i = 0; i < worlds.size(); ++i) {
      p_world *= worlds[i][choice[i]].prob;
    }
    // o is NN at tic t iff no object sits strictly closer than d_o.
    bool o_ever_nn = false;
    for (int t = 1; t <= m; ++t) {
      bool someone_closer = false;
      for (size_t i = 0; i < worlds.size(); ++i) {
        StateId s = worlds[i][choice[i]].traj.At(t);
        if (space.Distance(Point2{0, 0}, s) < d_o) someone_closer = true;
      }
      if (!someone_closer) {
        o_ever_nn = true;
        break;
      }
    }
    if (o_ever_nn) p_exists += p_world;
    size_t pos = 0;
    while (pos < worlds.size() && ++choice[pos] >= worlds[pos].size()) {
      choice[pos++] = 0;
    }
    if (pos == worlds.size()) break;
  }
  return p_exists;
}

TEST(SatReductionTest, EachVariableObjectHasExactlyTwoWorlds) {
  Formula paper = {{{0, false}, {1, true}, {2, true}},
                   {{1, true}, {2, false}, {3, true}},
                   {{0, true}, {1, false}}};
  for (int var = 0; var < 4; ++var) {
    auto model = VariableModel(paper, var);
    ASSERT_TRUE(model.ok());
    auto obs = ObservationSeq::Create({{0, kS0}});
    ASSERT_TRUE(obs.ok());
    auto posterior = AdaptTransitionMatrices(model.value(), obs.value(), 3);
    ASSERT_TRUE(posterior.ok());
    auto enumerated =
        EnumerateWindowTrajectories(posterior.value(), 1, 3, 100);
    ASSERT_TRUE(enumerated.ok());
    // Two possible worlds (xi = true / false), each with probability 1/2,
    // living on disjoint track bands.
    ASSERT_EQ(enumerated.value().size(), 2u);
    for (const auto& wt : enumerated.value()) {
      EXPECT_NEAR(wt.prob, 0.5, 1e-12);
      bool true_track = wt.traj.states[0] == kS2 || wt.traj.states[0] == kS4;
      for (StateId s : wt.traj.states) {
        if (true_track) {
          EXPECT_TRUE(s == kS2 || s == kS4);
        } else {
          EXPECT_TRUE(s == kS1 || s == kS3);
        }
      }
    }
  }
}

TEST(SatReductionTest, PaperExampleFormulaIsSatisfiable) {
  // E = (¬x1 ∨ x2 ∨ x3) ∧ (x2 ∨ ¬x3 ∨ x4) ∧ (x1 ∨ ¬x2), Figure 2.
  Formula paper = {{{0, false}, {1, true}, {2, true}},
                   {{1, true}, {2, false}, {3, true}},
                   {{0, true}, {1, false}}};
  ASSERT_TRUE(BruteForceSatisfiable(paper, 4));
  double p = ExistsNnProbOfO(paper, 4);
  EXPECT_LT(p, 1.0);
  EXPECT_GT(p, 0.0);  // not every assignment satisfies E either
}

TEST(SatReductionTest, UnsatisfiableFormulaForcesCertainNn) {
  // (x1) ∧ (¬x1): no world keeps o from being NN at some tic.
  Formula unsat = {{{0, true}}, {{0, false}}};
  ASSERT_FALSE(BruteForceSatisfiable(unsat, 1));
  EXPECT_DOUBLE_EQ(ExistsNnProbOfO(unsat, 1), 1.0);
}

TEST(SatReductionTest, LargerUnsatisfiableFormula) {
  // (x1 ∨ x2) ∧ (¬x1) ∧ (¬x2) ∧ (x1 ∨ x2): unsatisfiable.
  Formula unsat = {{{0, true}, {1, true}},
                   {{0, false}},
                   {{1, false}},
                   {{0, true}, {1, true}}};
  ASSERT_FALSE(BruteForceSatisfiable(unsat, 2));
  EXPECT_DOUBLE_EQ(ExistsNnProbOfO(unsat, 2), 1.0);
}

TEST(SatReductionTest, EquivalenceOnExhaustiveSmallFormulas) {
  // Sweep a family of random-ish 2-variable / 3-variable formulas and check
  // the reduction equivalence: satisfiable <=> P∃NN(o) < 1.
  std::vector<std::pair<Formula, int>> cases = {
      {{{{0, true}}}, 1},
      {{{{0, true}}, {{0, true}}}, 1},
      {{{{0, true}, {1, false}}, {{0, false}, {1, true}}}, 2},
      {{{{0, true}}, {{1, true}}, {{0, false}, {1, false}}}, 2},
      {{{{0, true}, {1, true}, {2, true}},
        {{0, false}, {1, false}},
        {{2, false}}},
       3},
      {{{{0, true}}, {{0, false}}, {{1, true}}}, 2},
  };
  for (size_t i = 0; i < cases.size(); ++i) {
    const auto& [formula, vars] = cases[i];
    bool sat = BruteForceSatisfiable(formula, vars);
    double p = ExistsNnProbOfO(formula, vars);
    EXPECT_EQ(sat, p < 1.0) << "case " << i << " sat=" << sat << " p=" << p;
  }
}

TEST(SatReductionTest, ExistsProbCountsSatisfyingAssignments) {
  // P∃NN(o) = 1 - (#satisfying assignments) / 2^n: each assignment is a
  // possible world of probability 2^-n.
  Formula formula = {{{0, true}, {1, true}}};  // x1 ∨ x2: 3 of 4 satisfy
  double p = ExistsNnProbOfO(formula, 2);
  EXPECT_NEAR(p, 1.0 - 3.0 / 4.0, 1e-12);
}

// ------------------------------------------------- PiecewiseModel basics --

TEST(PiecewiseModelTest, SelectsMatrixByTic) {
  auto a = testing::MakeMatrix(2, {{{1, 1.0}}, {{0, 1.0}}});
  auto b = testing::MakeMatrix(2, {{{0, 1.0}}, {{1, 1.0}}});
  auto model = PiecewiseModel::Create({{0, a}, {5, b}});
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(&model.value().At(0), a.get());
  EXPECT_EQ(&model.value().At(4), a.get());
  EXPECT_EQ(&model.value().At(5), b.get());
  EXPECT_EQ(&model.value().At(100), b.get());
  // Tics before the first switch fall back to the first piece.
  EXPECT_EQ(&model.value().At(-3), a.get());
  EXPECT_EQ(model.value().num_pieces(), 2u);
  EXPECT_EQ(model.value().num_states(), 2u);
}

TEST(PiecewiseModelTest, ValidatesInput) {
  auto a = testing::MakeMatrix(2, {{{1, 1.0}}, {{0, 1.0}}});
  auto small = testing::MakeMatrix(1, {{{0, 1.0}}});
  EXPECT_FALSE(PiecewiseModel::Create({}).ok());
  EXPECT_FALSE(PiecewiseModel::Create({{0, a}, {0, a}}).ok());
  EXPECT_FALSE(PiecewiseModel::Create({{0, a}, {3, small}}).ok());
  EXPECT_FALSE(PiecewiseModel::Create({{0, nullptr}}).ok());
}

TEST(HomogeneousModelTest, AlwaysSameMatrix) {
  auto a = testing::MakeMatrix(2, {{{1, 1.0}}, {{0, 1.0}}});
  HomogeneousModel model(a);
  EXPECT_EQ(&model.At(0), a.get());
  EXPECT_EQ(&model.At(1000), a.get());
  EXPECT_EQ(model.num_states(), 2u);
}

TEST(InhomogeneousAdaptationTest, MatchesManualTwoPhaseComputation) {
  // Phase 1 (tics 0-1): drift right; phase 2 (tics 2+): drift left. With an
  // observation pinning the end, the posterior must honor the per-phase
  // dynamics.
  auto right = testing::MakeMatrix(
      3, {{{1, 1.0}}, {{2, 1.0}}, {{2, 1.0}}});
  auto left = testing::MakeMatrix(
      3, {{{0, 1.0}}, {{0, 1.0}}, {{1, 1.0}}});
  auto model = PiecewiseModel::Create({{0, right}, {2, left}});
  ASSERT_TRUE(model.ok());
  auto obs = ObservationSeq::Create({{0, 0}});
  ASSERT_TRUE(obs.ok());
  auto posterior = AdaptTransitionMatrices(model.value(), obs.value(), 4);
  ASSERT_TRUE(posterior.ok());
  // Deterministic path: 0 ->(right) 1 ->(right) 2 ->(left) 1 ->(left) 0.
  EXPECT_DOUBLE_EQ(posterior.value().MarginalAt(1).Prob(1), 1.0);
  EXPECT_DOUBLE_EQ(posterior.value().MarginalAt(2).Prob(2), 1.0);
  EXPECT_DOUBLE_EQ(posterior.value().MarginalAt(3).Prob(1), 1.0);
  EXPECT_DOUBLE_EQ(posterior.value().MarginalAt(4).Prob(0), 1.0);
}

}  // namespace
}  // namespace ust
