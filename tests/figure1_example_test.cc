// End-to-end validation of the paper's Example 1 (Figure 1): all three query
// semantics on the worked two-object world, evaluated exactly, by Monte-Carlo
// sampling, and through the full query engine with and without the UST-tree.
#include <gtest/gtest.h>

#include "index/ust_tree.h"
#include "query/engine.h"
#include "query/exact.h"
#include "query/pcnn.h"
#include "test_world.h"
#include "util/stats.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;

MonteCarloOptions Opts(size_t worlds) {
  MonteCarloOptions o;
  o.num_worlds = worlds;
  o.seed = 1234;
  return o;
}

class Figure1Test : public ::testing::Test {
 protected:
  Figure1World world_ = MakeFigure1World();
};

TEST_F(Figure1Test, PossibleWorldCountsMatchPaper) {
  auto p1 = world_.db->object(world_.o1).Posterior();
  auto p2 = world_.db->object(world_.o2).Posterior();
  ASSERT_TRUE(p1.ok() && p2.ok());
  auto w1 = EnumerateWindowTrajectories(*p1.value(), 1, 3);
  auto w2 = EnumerateWindowTrajectories(*p2.value(), 1, 3);
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_EQ(w1.value().size(), 3u);  // tr1,1 tr1,2 tr1,3
  EXPECT_EQ(w2.value().size(), 2u);  // tr2,1 tr2,2
}

TEST_F(Figure1Test, ExactProbabilitiesMatchPaper) {
  auto exact = ExactPnnByEnumeration(*world_.db, {world_.o1, world_.o2},
                                     world_.q, world_.T);
  ASSERT_TRUE(exact.ok());
  EXPECT_NEAR(exact.value()[0].forall_prob, 0.75, 1e-12);   // P∀NN(o1)
  EXPECT_NEAR(exact.value()[1].exists_prob, 0.25, 1e-12);   // P∃NN(o2)
}

TEST_F(Figure1Test, EngineForallQueryWithoutIndex) {
  QueryEngine engine(*world_.db);
  auto result = engine.Forall(world_.q, world_.T, 0.1, Opts(20000));
  ASSERT_TRUE(result.ok());
  // Only o1 passes tau = 0.1 for the whole interval.
  ASSERT_EQ(result.value().results.size(), 1u);
  EXPECT_EQ(result.value().results[0].object, world_.o1);
  EXPECT_NEAR(result.value().results[0].prob, 0.75,
              HoeffdingEpsilon(20000, 0.01));
}

TEST_F(Figure1Test, EngineExistsQueryWithoutIndex) {
  QueryEngine engine(*world_.db);
  auto result = engine.Exists(world_.q, world_.T, 0.1, Opts(20000));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().results.size(), 2u);
  double p_o2 = 0.0;
  for (const auto& r : result.value().results) {
    if (r.object == world_.o2) p_o2 = r.prob;
  }
  EXPECT_NEAR(p_o2, 0.25, HoeffdingEpsilon(20000, 0.01));
}

TEST_F(Figure1Test, EngineMatchesWithUstTreeIndex) {
  auto index = UstTree::Build(*world_.db);
  ASSERT_TRUE(index.ok());
  QueryEngine with_index(*world_.db, &index.value());
  QueryEngine without_index(*world_.db);
  auto a = with_index.Forall(world_.q, world_.T, 0.1, Opts(20000));
  auto b = without_index.Forall(world_.q, world_.T, 0.1, Opts(20000));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().results.size(), b.value().results.size());
  for (size_t i = 0; i < a.value().results.size(); ++i) {
    EXPECT_EQ(a.value().results[i].object, b.value().results[i].object);
    EXPECT_NEAR(a.value().results[i].prob, b.value().results[i].prob, 0.02);
  }
  EXPECT_LE(a.value().num_candidates, b.value().num_candidates);
}

TEST_F(Figure1Test, PcnnMatchesPaperResultSet) {
  QueryEngine engine(*world_.db);
  auto result = engine.Continuous(world_.q, world_.T, 0.1, Opts(20000));
  ASSERT_TRUE(result.ok());
  auto maximal = FilterMaximal(result.value().pcnn.entries);
  // "PCNNQ(q, D, {1,2,3}, 0.1) will return the object o1 together with the
  //  interval {1,2,3} and o2 together with the interval {2,3}."
  ASSERT_EQ(maximal.size(), 2u);
  bool saw_o1 = false, saw_o2 = false;
  for (const auto& e : maximal) {
    if (e.object == world_.o1) {
      saw_o1 = true;
      EXPECT_EQ(e.tics, (std::vector<Tic>{1, 2, 3}));
    }
    if (e.object == world_.o2) {
      saw_o2 = true;
      EXPECT_EQ(e.tics, (std::vector<Tic>{2, 3}));
      EXPECT_NEAR(e.prob, 0.125, HoeffdingEpsilon(20000, 0.01));
    }
  }
  EXPECT_TRUE(saw_o1);
  EXPECT_TRUE(saw_o2);
}

TEST_F(Figure1Test, HigherTauDropsO2) {
  QueryEngine engine(*world_.db);
  auto result = engine.Continuous(world_.q, world_.T, 0.3, Opts(5000));
  ASSERT_TRUE(result.ok());
  for (const auto& e : result.value().pcnn.entries) {
    EXPECT_EQ(e.object, world_.o1);  // o2's best set has P = 0.125 < 0.3
  }
}

}  // namespace
}  // namespace ust
