// Tests of the plan-based batched pipeline (query/session.h): RunAll
// results bit-identical to the serial QueryEngine path at any thread count,
// planner backend selection with the override knob, scratch reuse without
// cross-query state leaks, parallel posterior adaptation, and the packed
// NnTable probability reductions.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"
#include "query/session.h"
#include "test_world.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ust {
namespace {

using testing::MakeFigure1World;

bool SamePnn(const PnnQueryResult& a, const PnnQueryResult& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    if (a.results[i].object != b.results[i].object) return false;
    if (a.results[i].prob != b.results[i].prob) return false;  // bitwise
  }
  return a.num_candidates == b.num_candidates &&
         a.num_influencers == b.num_influencers;
}

bool SamePcnn(const PcnnQueryResult& a, const PcnnQueryResult& b) {
  if (a.pcnn.entries.size() != b.pcnn.entries.size()) return false;
  for (size_t i = 0; i < a.pcnn.entries.size(); ++i) {
    const PcnnEntry& x = a.pcnn.entries[i];
    const PcnnEntry& y = b.pcnn.entries[i];
    if (x.object != y.object || x.tics != y.tics || x.prob != y.prob) {
      return false;
    }
  }
  return a.pcnn.validations == b.pcnn.validations &&
         a.pcnn.candidates_generated == b.pcnn.candidates_generated;
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 25;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }

  /// A mixed batch over several query points, intervals and semantics, all
  /// pinned to the Monte-Carlo backend (comparable to QueryEngine).
  std::vector<QuerySpec> MakeBatch(size_t n) const {
    Rng rng(5);
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < n; ++i) {
      QuerySpec spec;
      spec.kind = i % 3 == 0   ? QueryKind::kForall
                  : i % 3 == 1 ? QueryKind::kExists
                               : QueryKind::kContinuous;
      spec.q = RandomQueryState(*world_->space, rng);
      spec.T = i % 2 == 0 ? T_ : TimeInterval{T_.start, T_.end - 2};
      spec.tau = spec.kind == QueryKind::kContinuous ? 0.3 : 0.05;
      spec.mc.num_worlds = 500 + 100 * (i % 2);
      spec.mc.seed = 21 + i;
      spec.backend = ExecutorKind::kMonteCarlo;
      specs.push_back(spec);
    }
    return specs;
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(SessionTest, RunAllBitIdenticalToSerialEngineAtAnyThreadCount) {
  const std::vector<QuerySpec> specs = MakeBatch(9);
  // Reference: the serial single-query engine, one call per spec.
  QueryEngine engine(*world_->db, index_.get());
  std::vector<PnnQueryResult> ref_pnn(specs.size());
  std::vector<PcnnQueryResult> ref_pcnn(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    const QuerySpec& s = specs[i];
    if (s.kind == QueryKind::kForall) {
      auto r = engine.Forall(s.q, s.T, s.tau, s.mc);
      ASSERT_TRUE(r.ok());
      ref_pnn[i] = r.MoveValue();
    } else if (s.kind == QueryKind::kExists) {
      auto r = engine.Exists(s.q, s.T, s.tau, s.mc);
      ASSERT_TRUE(r.ok());
      ref_pnn[i] = r.MoveValue();
    } else {
      auto r = engine.Continuous(s.q, s.T, s.tau, s.mc);
      ASSERT_TRUE(r.ok());
      ref_pcnn[i] = r.MoveValue();
    }
  }
  for (int threads : {1, 2, 4}) {
    SessionOptions options;
    options.threads = threads;
    QuerySession session(*world_->db, index_.get(), options);
    auto outcomes = session.RunAll(specs);
    ASSERT_EQ(outcomes.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(outcomes[i].status.ok())
          << "threads=" << threads << " query " << i << ": "
          << outcomes[i].status.ToString();
      EXPECT_EQ(outcomes[i].executor, ExecutorKind::kMonteCarlo);
      if (specs[i].kind == QueryKind::kContinuous) {
        EXPECT_TRUE(SamePcnn(outcomes[i].pcnn, ref_pcnn[i]))
            << "threads=" << threads << " query " << i;
      } else {
        EXPECT_TRUE(SamePnn(outcomes[i].pnn, ref_pnn[i]))
            << "threads=" << threads << " query " << i;
      }
    }
  }
}

TEST_F(SessionTest, LoneQueryShardsWorldsWithoutChangingBits) {
  // A single spec routes through per-query world sharding instead of
  // cross-query sharding; the bits must not notice.
  QuerySpec spec = MakeBatch(1)[0];
  spec.mc.num_worlds = 2048;  // several 512-world chunks to shard
  SessionOptions serial_opts;
  QuerySession serial(*world_->db, index_.get(), serial_opts);
  QueryOutcome ref = serial.Run(spec);
  ASSERT_TRUE(ref.status.ok());
  for (int threads : {2, 4}) {
    SessionOptions options;
    options.threads = threads;
    QuerySession session(*world_->db, index_.get(), options);
    auto outcomes = session.RunAll({spec});
    ASSERT_EQ(outcomes.size(), 1u);
    ASSERT_TRUE(outcomes[0].status.ok());
    EXPECT_TRUE(SamePnn(outcomes[0].pnn, ref.pnn)) << "threads=" << threads;
  }
}

TEST_F(SessionTest, PlannerPicksExactForTinyCandidateSets) {
  auto fig = MakeFigure1World();
  QuerySession session(*fig.db, nullptr);
  QuerySpec spec;
  spec.kind = QueryKind::kForall;
  spec.q = fig.q;
  spec.T = fig.T;
  spec.tau = 0.0;
  QueryOutcome out = session.Run(spec);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.executor, ExecutorKind::kExact);
  // Enumeration reproduces the paper's ground truth exactly.
  double o1_prob = -1.0;
  for (const auto& r : out.pnn.results) {
    if (r.object == fig.o1) o1_prob = r.prob;
  }
  EXPECT_DOUBLE_EQ(o1_prob, 0.75);
}

TEST_F(SessionTest, PlannerPicksMonteCarloForLargeCandidateSets) {
  QuerySpec spec = MakeBatch(1)[0];
  spec.kind = QueryKind::kForall;
  spec.backend = ExecutorKind::kAuto;
  QuerySession session(*world_->db, index_.get());
  QueryOutcome out = session.Run(spec);
  ASSERT_TRUE(out.status.ok());
  ASSERT_GT(out.pnn.num_candidates, 3u);  // filter output is not tiny
  EXPECT_EQ(out.executor, ExecutorKind::kMonteCarlo);
}

TEST_F(SessionTest, PerQueryOverrideBeatsThePlanner) {
  auto fig = MakeFigure1World();
  QuerySession session(*fig.db, nullptr);
  QuerySpec spec;
  spec.kind = QueryKind::kForall;
  spec.q = fig.q;
  spec.T = fig.T;
  spec.tau = 0.0;
  spec.mc.num_worlds = 4000;
  spec.backend = ExecutorKind::kMonteCarlo;  // tiny set, but MC is forced
  QueryOutcome out = session.Run(spec);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.executor, ExecutorKind::kMonteCarlo);
}

TEST_F(SessionTest, SessionWideForceAndMarkovBackend) {
  auto fig = MakeFigure1World();
  // Session-wide force: every kAuto query runs the chain-rule approximation.
  SessionOptions options;
  options.planner.force = ExecutorKind::kMarkovApprox;
  QuerySession session(*fig.db, nullptr, options);
  QuerySpec spec;
  spec.kind = QueryKind::kForall;
  spec.q = fig.q;
  spec.T = fig.T;
  spec.tau = 0.0;
  QueryOutcome out = session.Run(spec);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.executor, ExecutorKind::kMarkovApprox);
  // With one competitor the approximation is exact (it is just Lemma 2).
  double o1_prob = -1.0;
  for (const auto& r : out.pnn.results) {
    if (r.object == fig.o1) o1_prob = r.prob;
  }
  EXPECT_NEAR(o1_prob, 0.75, 1e-12);
  // An explicitly forced backend that cannot honor the semantics is an
  // error, not a silent fallback.
  QuerySpec exists = spec;
  exists.kind = QueryKind::kExists;
  exists.backend = ExecutorKind::kMarkovApprox;
  QueryOutcome bad = session.Run(exists);
  EXPECT_FALSE(bad.status.ok());
  // The session-wide force is just as explicit: a kAuto spec under it must
  // error too, not silently substitute Monte-Carlo numbers.
  QuerySpec exists_auto = spec;
  exists_auto.kind = QueryKind::kExists;
  exists_auto.backend = ExecutorKind::kAuto;
  QueryOutcome bad_auto = session.Run(exists_auto);
  EXPECT_FALSE(bad_auto.status.ok());
  // Continuous queries only run on the Monte-Carlo table; forcing another
  // backend is the same contract violation.
  QuerySpec continuous = spec;
  continuous.kind = QueryKind::kContinuous;
  continuous.backend = ExecutorKind::kExact;
  QueryOutcome bad_pcnn = session.Run(continuous);
  EXPECT_FALSE(bad_pcnn.status.ok());
}

TEST_F(SessionTest, BatchSurvivesUnrelatedContradictoryObject) {
  // A database object whose observations contradict its model breaks
  // Prepare(), but queries that never touch it must still succeed — RunAll
  // degrades to the lazy serial path instead of failing the batch.
  auto line = testing::MakeLineWorld(12);  // ±1 step per tic
  TrajectoryDatabase db(line.space);
  auto good_obs = ObservationSeq::Create({{0, 2}, {4, 4}});
  ASSERT_TRUE(good_obs.ok());
  db.AddObject(good_obs.MoveValue(), line.matrix, /*end_tic=*/6);
  // Unreachable: state 2 -> state 9 in one tic. Alive window [50, 51] keeps
  // it out of every query below.
  auto bad_obs = ObservationSeq::Create({{50, 2}, {51, 9}});
  ASSERT_TRUE(bad_obs.ok());
  db.AddObject(bad_obs.MoveValue(), line.matrix, /*end_tic=*/51);
  ASSERT_FALSE(db.EnsureAllPosteriors().ok());

  std::vector<QuerySpec> specs(2);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].kind = QueryKind::kForall;
    specs[i].q = QueryTrajectory::FromPoint({static_cast<double>(i), 0.0});
    specs[i].T = TimeInterval{1, 4};
    specs[i].mc.num_worlds = 200;
    specs[i].backend = ExecutorKind::kMonteCarlo;
  }
  SessionOptions serial_opts;
  QuerySession serial(db, nullptr, serial_opts);
  auto ref = serial.RunAll(specs);
  SessionOptions par_opts;
  par_opts.threads = 2;
  QuerySession parallel(db, nullptr, par_opts);
  auto got = parallel.RunAll(specs);
  ASSERT_EQ(got.size(), ref.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(ref[i].status.ok()) << ref[i].status.ToString();
    ASSERT_TRUE(got[i].status.ok()) << got[i].status.ToString();
    EXPECT_TRUE(SamePnn(got[i].pnn, ref[i].pnn)) << i;
  }
}

TEST_F(SessionTest, PlannerMisfireFallsBackToMonteCarlo) {
  // Loosened thresholds send a 25-object refinement to enumeration; the
  // cross-product cap trips at runtime and the query degrades to sampling.
  SessionOptions options;
  options.planner.exact_max_candidates = 1000;
  options.planner.exact_max_participants = 1000;
  options.planner.exact_max_interval = 1000;
  QuerySession session(*world_->db, index_.get(), options);
  QuerySpec spec = MakeBatch(1)[0];
  spec.kind = QueryKind::kForall;
  spec.backend = ExecutorKind::kAuto;
  QueryOutcome out = session.Run(spec);
  ASSERT_TRUE(out.status.ok());
  EXPECT_EQ(out.executor, ExecutorKind::kMonteCarlo);
}

TEST_F(SessionTest, ScratchReuseDoesNotLeakStateAcrossQueries) {
  std::vector<QuerySpec> specs = MakeBatch(6);
  // Fresh session per query vs one session running interleaved repeats:
  // identical bits prove the per-worker scratch resets between queries.
  QuerySession shared(*world_->db, index_.get());
  std::vector<QueryOutcome> first, second;
  for (const QuerySpec& s : specs) first.push_back(shared.Run(s));
  for (const QuerySpec& s : specs) second.push_back(shared.Run(s));
  for (size_t i = 0; i < specs.size(); ++i) {
    QuerySession fresh(*world_->db, index_.get());
    QueryOutcome ref = fresh.Run(specs[i]);
    ASSERT_TRUE(ref.status.ok());
    for (const auto* got : {&first[i], &second[i]}) {
      ASSERT_TRUE(got->status.ok());
      if (specs[i].kind == QueryKind::kContinuous) {
        EXPECT_TRUE(SamePcnn(got->pcnn, ref.pcnn)) << i;
      } else {
        EXPECT_TRUE(SamePnn(got->pnn, ref.pnn)) << i;
      }
    }
  }
}

TEST_F(SessionTest, ParallelEnsureAllPosteriorsMatchesSerial) {
  // Two identical databases; adapt one serially, one on a pool. The cached
  // posteriors must agree distribution-for-distribution.
  SyntheticConfig config;
  config.num_states = 400;
  config.num_objects = 12;
  config.lifetime = 20;
  config.obs_interval = 5;
  config.horizon = 30;
  config.seed = 99;
  auto w1 = GenerateSyntheticWorld(config);
  auto w2 = GenerateSyntheticWorld(config);
  ASSERT_TRUE(w1.ok() && w2.ok());
  const TrajectoryDatabase& a = *w1.value().db;
  const TrajectoryDatabase& b = *w2.value().db;
  ASSERT_TRUE(a.EnsureAllPosteriors().ok());
  ThreadPool pool(4);
  ASSERT_TRUE(b.EnsureAllPosteriors(&pool).ok());
  for (ObjectId id = 0; id < a.size(); ++id) {
    auto pa = a.object(id).Posterior();
    auto pb = b.object(id).Posterior();
    ASSERT_TRUE(pa.ok() && pb.ok());
    ASSERT_EQ(pa.value()->first_tic(), pb.value()->first_tic());
    ASSERT_EQ(pa.value()->num_slices(), pb.value()->num_slices());
    for (Tic t = pa.value()->first_tic(); t <= pa.value()->last_tic(); ++t) {
      const auto& sa = pa.value()->SliceAt(t);
      const auto& sb = pb.value()->SliceAt(t);
      ASSERT_EQ(sa.support, sb.support);
      ASSERT_EQ(sa.marginal, sb.marginal);  // bitwise: same op order
      ASSERT_EQ(sa.targets, sb.targets);
      ASSERT_EQ(sa.tprobs, sb.tprobs);
    }
  }
}

TEST_F(SessionTest, PackedNnTableMatchesPerBitProbes) {
  // The word-wide AND/OR reductions must agree with brute-force IsNn scans.
  auto ids = world_->db->AliveSometime(T_.start, T_.end);
  ASSERT_GT(ids.size(), 2u);
  Rng rng(11);
  QueryTrajectory q = RandomQueryState(*world_->space, rng);
  MonteCarloOptions options;
  options.num_worlds = 777;  // deliberately not a multiple of 64
  auto table = ComputeNnTable(*world_->db, ids, q, T_, options);
  ASSERT_TRUE(table.ok());
  const NnTable& t = table.value();
  const std::vector<Tic> all = T_.Tics();
  const std::vector<Tic> subset = {T_.start, static_cast<Tic>(T_.start + 2)};
  for (size_t idx = 0; idx < ids.size(); ++idx) {
    size_t forall_all = 0, exists_all = 0, forall_sub = 0, exists_sub = 0;
    std::vector<size_t> single(T_.length(), 0);
    for (size_t w = 0; w < options.num_worlds; ++w) {
      bool all_all = true, any_all = false, all_sub = true, any_sub = false;
      for (Tic tic = T_.start; tic <= T_.end; ++tic) {
        const bool nn = t.IsNn(idx, w, tic);
        all_all &= nn;
        any_all |= nn;
        single[static_cast<size_t>(tic - T_.start)] += nn ? 1 : 0;
        if (tic == subset[0] || tic == subset[1]) {
          all_sub &= nn;
          any_sub |= nn;
        }
      }
      forall_all += all_all;
      exists_all += any_all;
      forall_sub += all_sub;
      exists_sub += any_sub;
    }
    const double W = static_cast<double>(options.num_worlds);
    EXPECT_DOUBLE_EQ(t.ForallProb(idx), forall_all / W);
    EXPECT_DOUBLE_EQ(t.ExistsProb(idx), exists_all / W);
    EXPECT_DOUBLE_EQ(t.ForallProb(idx, all), forall_all / W);
    EXPECT_DOUBLE_EQ(t.ExistsProb(idx, all), exists_all / W);
    EXPECT_DOUBLE_EQ(t.ForallProb(idx, subset), forall_sub / W);
    EXPECT_DOUBLE_EQ(t.ExistsProb(idx, subset), exists_sub / W);
    for (Tic tic = T_.start; tic <= T_.end; ++tic) {
      EXPECT_DOUBLE_EQ(t.ProbAt(idx, tic),
                       single[static_cast<size_t>(tic - T_.start)] / W);
    }
  }
}

TEST_F(SessionTest, FailureIsolationInBatches) {
  // One bad query (a forced backend that cannot honor its semantics) must
  // not poison its batchmates.
  std::vector<QuerySpec> specs = MakeBatch(3);
  specs[1].kind = QueryKind::kExists;
  specs[1].backend = ExecutorKind::kMarkovApprox;  // P∀NN-only backend
  QuerySession session(*world_->db, index_.get());
  auto outcomes = session.RunAll(specs);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[0].status.ok());
  EXPECT_FALSE(outcomes[1].status.ok());
  EXPECT_TRUE(outcomes[2].status.ok());
}

}  // namespace
}  // namespace ust
