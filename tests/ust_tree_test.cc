#include <gtest/gtest.h>

#include <algorithm>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/exact.h"
#include "query/monte_carlo.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;
using testing::MakeLineWorld;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

bool ContainsId(const std::vector<ObjectId>& ids, ObjectId id) {
  return std::find(ids.begin(), ids.end(), id) != ids.end();
}

TEST(UstTreeTest, SegmentEntriesPerObservationPair) {
  auto line = MakeLineWorld(9, 0.25, 0.5);
  TrajectoryDatabase db(line.space);
  db.AddObject(Obs({{0, 4}, {3, 6}, {7, 2}}), line.matrix);
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  // Two observation segments, no lifetime extension.
  ASSERT_EQ(tree.value().entries().size(), 2u);
  EXPECT_EQ(tree.value().entries()[0].t_lo, 0);
  EXPECT_EQ(tree.value().entries()[0].t_hi, 3);
  EXPECT_EQ(tree.value().entries()[1].t_lo, 3);
  EXPECT_EQ(tree.value().entries()[1].t_hi, 7);
}

TEST(UstTreeTest, ExtensionSegmentAdded) {
  auto line = MakeLineWorld(9, 0.25, 0.5);
  TrajectoryDatabase db(line.space);
  db.AddObject(Obs({{0, 4}, {3, 6}}), line.matrix, /*end_tic=*/6);
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree.value().entries().size(), 2u);
  EXPECT_EQ(tree.value().entries()[1].t_lo, 3);
  EXPECT_EQ(tree.value().entries()[1].t_hi, 6);
}

TEST(UstTreeTest, SingleObservationEntryIsPoint) {
  auto line = MakeLineWorld(5);
  TrajectoryDatabase db(line.space);
  db.AddObject(Obs({{4, 2}}), line.matrix);
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  ASSERT_EQ(tree.value().entries().size(), 1u);
  const auto& e = tree.value().entries()[0];
  EXPECT_EQ(e.t_lo, 4);
  EXPECT_EQ(e.t_hi, 4);
  EXPECT_DOUBLE_EQ(e.mbr.lo[0], e.mbr.hi[0]);
}

TEST(UstTreeTest, MbrCoversPosteriorSupport) {
  // The conservative diamond MBR must contain every state with nonzero
  // posterior probability at every tic of the segment.
  auto line = MakeLineWorld(15, 0.3, 0.4);
  TrajectoryDatabase db(line.space);
  ObjectId id = db.AddObject(Obs({{0, 7}, {5, 10}, {9, 6}}), line.matrix);
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  auto posterior = db.object(id).Posterior();
  ASSERT_TRUE(posterior.ok());
  for (Tic t = 0; t <= 9; ++t) {
    SparseDist marginal = posterior.value()->MarginalAt(t);
    for (StateId s : marginal.ids()) {
      const Point2& pt = db.space().coord(s);
      bool covered = false;
      for (const auto& e : tree.value().entries()) {
        if (e.t_lo <= t && t <= e.t_hi && e.mbr.Contains({pt.x, pt.y})) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << "state " << s << " at t=" << t;
    }
  }
}

TEST(UstTreeTest, ContradictingObservationsReported) {
  auto line = MakeLineWorld(20, 0.25, 0.5);
  TrajectoryDatabase db(line.space);
  db.AddObject(Obs({{0, 0}, {2, 15}}), line.matrix);  // 15 hops in 2 tics
  auto tree = UstTree::Build(db);
  ASSERT_FALSE(tree.ok());
  EXPECT_EQ(tree.status().code(), StatusCode::kContradiction);
}

TEST(UstTreeTest, Figure1Pruning) {
  Figure1World world = MakeFigure1World();
  auto tree = UstTree::Build(*world.db);
  ASSERT_TRUE(tree.ok());
  PruneResult forall = tree.value().PruneForall(world.q, world.T);
  // o1 can reach distance-1 states while o2 cannot undercut it for sure:
  // both are candidates here (o2 can be closest at later tics).
  EXPECT_TRUE(ContainsId(forall.influencers, world.o1));
  EXPECT_TRUE(ContainsId(forall.influencers, world.o2));
  PruneResult exists = tree.value().PruneExists(world.q, world.T);
  EXPECT_EQ(exists.candidates.size(), exists.influencers.size());
  EXPECT_TRUE(ContainsId(exists.candidates, world.o1));
}

TEST(UstTreeTest, FarAwayObjectPrunedButNearOnesKept) {
  // Three pinned objects at distances 1, 2 and 50: the far one can never be
  // a 1NN candidate, the near two must be retained.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}, {0, 50}});
  auto matrix = testing::MakeMatrix(
      3, {{{0, 1.0}}, {{1, 1.0}}, {{2, 1.0}}});
  TrajectoryDatabase db(space);
  ObjectId near1 = db.AddObject(Obs({{0, 0}, {4, 0}}), matrix);
  db.AddObject(Obs({{0, 1}, {4, 1}}), matrix);  // near2: kept but unasserted
  ObjectId far = db.AddObject(Obs({{0, 2}, {4, 2}}), matrix);
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  PruneResult forall = tree.value().PruneForall(q, {0, 4});
  EXPECT_TRUE(ContainsId(forall.candidates, near1));
  EXPECT_FALSE(ContainsId(forall.candidates, far));
  EXPECT_FALSE(ContainsId(forall.influencers, far));
  PruneResult exists = tree.value().PruneExists(q, {0, 4});
  EXPECT_FALSE(ContainsId(exists.candidates, far));
}

TEST(UstTreeTest, KnnPruningKeepsMoreObjects) {
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}, {0, 3}});
  auto matrix =
      testing::MakeMatrix(3, {{{0, 1.0}}, {{1, 1.0}}, {{2, 1.0}}});
  TrajectoryDatabase db(space);
  db.AddObject(Obs({{0, 0}, {4, 0}}), matrix);
  db.AddObject(Obs({{0, 1}, {4, 1}}), matrix);
  db.AddObject(Obs({{0, 2}, {4, 2}}), matrix);
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  PruneResult k1 = tree.value().PruneForall(q, {0, 4}, 1);
  PruneResult k2 = tree.value().PruneForall(q, {0, 4}, 2);
  PruneResult k3 = tree.value().PruneForall(q, {0, 4}, 3);
  EXPECT_EQ(k1.candidates.size(), 1u);
  EXPECT_EQ(k2.candidates.size(), 2u);
  EXPECT_EQ(k3.candidates.size(), 3u);
}

TEST(UstTreeTest, PruningIsSafeOnSyntheticWorlds) {
  // Safety: every object with nonzero exact P∃NN/P∀NN must survive pruning.
  SyntheticConfig config;
  config.num_states = 400;
  config.num_objects = 12;
  config.lifetime = 20;
  config.obs_interval = 5;
  config.horizon = 30;
  config.seed = 3;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  auto tree = UstTree::Build(db);
  ASSERT_TRUE(tree.ok());
  Rng rng(9);
  for (int iter = 0; iter < 5; ++iter) {
    QueryTrajectory q = RandomQueryState(db.space(), rng);
    TimeInterval T = BusiestInterval(db, 4);
    // Reference: Monte-Carlo over *all* alive objects (no pruning).
    std::vector<ObjectId> alive = db.AliveSometime(T.start, T.end);
    if (alive.empty()) continue;
    MonteCarloOptions options;
    options.num_worlds = 400;
    options.seed = iter;
    auto reference = EstimatePnn(db, alive, alive, q, T, options);
    ASSERT_TRUE(reference.ok());
    PruneResult forall = tree.value().PruneForall(q, T);
    PruneResult exists = tree.value().PruneExists(q, T);
    for (size_t i = 0; i < alive.size(); ++i) {
      const PnnEstimate& e = reference.value()[i];
      if (e.forall_prob > 0.0) {
        EXPECT_TRUE(ContainsId(forall.candidates, e.object))
            << "object " << e.object << " with P∀NN=" << e.forall_prob
            << " was pruned (iter " << iter << ")";
      }
      if (e.exists_prob > 0.0) {
        EXPECT_TRUE(ContainsId(exists.candidates, e.object))
            << "object " << e.object << " with P∃NN=" << e.exists_prob
            << " was pruned (iter " << iter << ")";
      }
    }
    // Structural relations between the prune sets.
    for (ObjectId c : forall.candidates) {
      EXPECT_TRUE(ContainsId(forall.influencers, c));
      EXPECT_TRUE(ContainsId(exists.candidates, c));
    }
  }
}

}  // namespace
}  // namespace ust
