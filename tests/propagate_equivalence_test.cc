// Equivalence tests of the optimized sampling/propagation hot path against
// naive reference implementations:
//  * Propagate / GroupNormalize — bit-identical to an encounter-order
//    map-based reference (the workspace scatter-accumulate adds in the same
//    order, so even the floating-point rounding must agree).
//  * Alias samplers — chi-square agreement with the exact distribution.
//  * EstimatePnn — same seed => identical output, batched and world-at-a-time
//    sampling produce the same worlds, and estimates match enumeration.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "markov/alias_table.h"
#include "markov/propagate_workspace.h"
#include "markov/sparse_dist.h"
#include "markov/transition_matrix.h"
#include "model/adaptation.h"
#include "query/exact.h"
#include "query/monte_carlo.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;
using testing::MakeLineWorld;

// Reference propagation: scatter into a map, accumulating duplicate targets
// in encounter order (the same addition order as the dense workspace).
SparseDist ReferencePropagate(const TransitionMatrix& m, const SparseDist& d) {
  std::map<StateId, double> acc;
  for (size_t i = 0; i < d.size(); ++i) {
    const StateId from = d.ids()[i];
    const double p = d.probs()[i];
    for (const auto* e = m.begin(from); e != m.end(from); ++e) {
      auto [it, inserted] = acc.emplace(e->first, e->second * p);
      if (!inserted) it->second += e->second * p;
    }
  }
  std::vector<StateId> ids;
  std::vector<double> probs;
  for (const auto& [s, p] : acc) {
    ids.push_back(s);
    probs.push_back(p);
  }
  return SparseDist::FromSorted(std::move(ids), std::move(probs));
}

TEST(PropagateEquivalenceTest, PropagateBitIdenticalToReference) {
  auto world = MakeLineWorld(31, 0.27, 0.46);
  SparseDist dist = SparseDist::Indicator(15);
  PropagateWorkspace ws(31);
  for (int step = 0; step < 12; ++step) {
    SparseDist reference = ReferencePropagate(*world.matrix, dist);
    SparseDist optimized = world.matrix->Propagate(dist, &ws);
    ASSERT_EQ(optimized.size(), reference.size()) << "step " << step;
    for (size_t i = 0; i < optimized.size(); ++i) {
      EXPECT_EQ(optimized.ids()[i], reference.ids()[i]);
      // Bit-identical, not just close: same addition order by construction.
      EXPECT_EQ(optimized.probs()[i], reference.probs()[i])
          << "step " << step << " state " << optimized.ids()[i];
    }
    dist = optimized;
    dist.Normalize();
  }
}

TEST(PropagateEquivalenceTest, GroupNormalizeMatchesReference) {
  // Triples with shuffled keys and repeated members across keys.
  Rng rng(77);
  std::vector<StateId> keys;
  std::vector<uint32_t> members;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    keys.push_back(static_cast<StateId>(rng.UniformInt(40)));
    members.push_back(static_cast<uint32_t>(rng.UniformInt(17)));
    values.push_back(rng.Uniform() + 1e-3);
  }
  // Reference: group by key preserving encounter order within each group.
  std::map<StateId, std::vector<std::pair<uint32_t, double>>> groups;
  std::map<StateId, double> sums;
  for (size_t i = 0; i < keys.size(); ++i) {
    groups[keys[i]].push_back({members[i], values[i]});
    auto [it, inserted] = sums.emplace(keys[i], values[i]);
    if (!inserted) it->second += values[i];
  }

  PropagateWorkspace ws;
  std::vector<StateId> out_keys;
  std::vector<double> out_sums;
  std::vector<uint32_t> out_offsets;
  std::vector<uint32_t> out_members;
  std::vector<double> out_values;
  GroupNormalize(keys, members, values, &ws, &out_keys, &out_sums,
                 &out_offsets, &out_members, &out_values);

  ASSERT_EQ(out_keys.size(), groups.size());
  size_t row = 0;
  for (const auto& [key, entries] : groups) {
    EXPECT_EQ(out_keys[row], key);
    EXPECT_EQ(out_sums[row], sums[key]);  // bit-identical sums
    ASSERT_EQ(out_offsets[row + 1] - out_offsets[row], entries.size());
    for (size_t j = 0; j < entries.size(); ++j) {
      EXPECT_EQ(out_members[out_offsets[row] + j], entries[j].first);
      EXPECT_EQ(out_values[out_offsets[row] + j],
                entries[j].second / sums[key]);
    }
    ++row;
  }
}

// Chi-square statistic of observed counts vs expected probabilities.
double ChiSquare(const std::vector<size_t>& observed,
                 const std::vector<double>& probs, size_t n) {
  double chi2 = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double expected = probs[i] * static_cast<double>(n);
    const double diff = static_cast<double>(observed[i]) - expected;
    chi2 += diff * diff / expected;
  }
  return chi2;
}

TEST(PropagateEquivalenceTest, AliasTableChiSquare) {
  const std::vector<double> weights = {0.5, 1.0, 0.25, 3.0, 0.01, 1.24};
  double total = 0.0;
  for (double w : weights) total += w;
  AliasTable table;
  table.Build(weights);
  Rng rng(123);
  const size_t n = 200000;
  std::vector<size_t> counts(weights.size(), 0);
  for (size_t i = 0; i < n; ++i) ++counts[table.Sample(rng)];
  std::vector<double> probs;
  for (double w : weights) probs.push_back(w / total);
  // df = 5; the 0.999 quantile of chi2(5) is ~20.5.
  EXPECT_LT(ChiSquare(counts, probs, n), 20.5);
}

TEST(PropagateEquivalenceTest, PosteriorSamplerChiSquareAgainstMarginal) {
  auto world = MakeLineWorld(9, 0.25, 0.5);
  auto obs = ObservationSeq::Create({{0, 4}, {8, 4}});
  ASSERT_TRUE(obs.ok());
  auto model = AdaptTransitionMatrices(*world.matrix, obs.value());
  ASSERT_TRUE(model.ok());
  // The mid-window marginal has the widest support.
  const Tic probe = 4;
  SparseDist marginal = model.value().MarginalAt(probe);
  Rng rng(5);
  const size_t n = 200000;
  std::map<StateId, size_t> hist;
  for (size_t i = 0; i < n; ++i) ++hist[model.value().SampleAt(probe, rng)];
  std::vector<size_t> counts;
  std::vector<double> probs;
  for (size_t i = 0; i < marginal.size(); ++i) {
    counts.push_back(hist[marginal.ids()[i]]);
    probs.push_back(marginal.probs()[i]);
    hist.erase(marginal.ids()[i]);
  }
  EXPECT_TRUE(hist.empty()) << "sampled a state outside the support";
  // Generous 0.999-quantile bound for the support size at hand.
  EXPECT_LT(ChiSquare(counts, probs, n),
            static_cast<double>(counts.size()) * 6.0 + 16.0);
}

TEST(PropagateEquivalenceTest, ExtensionSkipsExplicitZeroProbabilityEdges) {
  // FromRows accepts explicit 0.0-probability entries; states reachable only
  // through such edges must be dropped from the extended support (they carry
  // no mass) without aborting or misaligning the remaining target indices.
  auto matrix = testing::MakeMatrix(
      3, {{{0, 0.5}, {1, 0.0}, {2, 0.5}}, {{1, 1.0}}, {{2, 1.0}}});
  auto obs = ObservationSeq::Create({{0, 0}});
  ASSERT_TRUE(obs.ok());
  auto model = AdaptTransitionMatrices(*matrix, obs.value(),
                                       /*extend_until=*/2);
  ASSERT_TRUE(model.ok());
  for (Tic t = 1; t <= 2; ++t) {
    SparseDist marginal = model.value().MarginalAt(t);
    EXPECT_DOUBLE_EQ(marginal.Prob(1), 0.0) << "t=" << t;
    EXPECT_NEAR(marginal.Mass(), 1.0, 1e-12) << "t=" << t;
  }
  EXPECT_DOUBLE_EQ(model.value().MarginalAt(2).Prob(2), 0.75);
  // Rows over the surviving support stay stochastic.
  for (Tic t = 0; t < 2; ++t) {
    const auto& slice = model.value().SliceAt(t);
    for (size_t i = 0; i < slice.support.size(); ++i) {
      double sum = 0.0;
      for (uint32_t e = slice.row_offsets[i]; e < slice.row_offsets[i + 1];
           ++e) {
        sum += slice.tprobs[e];
      }
      EXPECT_NEAR(sum, 1.0, 1e-12) << "t=" << t;
    }
  }
}

TEST(PropagateEquivalenceTest, EstimatePnnSameSeedIsDeterministic) {
  Figure1World w = MakeFigure1World();
  std::vector<ObjectId> all = {w.o1, w.o2};
  MonteCarloOptions options;
  options.num_worlds = 2000;
  options.seed = 99;
  auto a = EstimatePnn(*w.db, all, all, w.q, w.T, options);
  auto b = EstimatePnn(*w.db, all, all, w.q, w.T, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].forall_prob, b.value()[i].forall_prob);
    EXPECT_EQ(a.value()[i].exists_prob, b.value()[i].exists_prob);
  }
}

TEST(PropagateEquivalenceTest, BatchedWorldsMatchWorldAtATime) {
  // The batched chunked path and the one-world-at-a-time path must produce
  // the *same* worlds (per-participant RNG streams are chunk-independent).
  Figure1World w = MakeFigure1World();
  std::vector<ObjectId> all = {w.o1, w.o2};
  const size_t num_worlds = 700;  // exercises a partial trailing chunk
  const size_t stride = all.size() * w.T.length();

  auto batched = WorldSampler::Create(*w.db, all, w.q, w.T, 1, 4242);
  ASSERT_TRUE(batched.ok());
  std::vector<uint8_t> batched_bits(num_worlds * stride);
  batched.value().SampleWorlds(num_worlds, batched_bits.data(), stride);

  auto stepped = WorldSampler::Create(*w.db, all, w.q, w.T, 1, 4242);
  ASSERT_TRUE(stepped.ok());
  std::vector<uint8_t> stepped_bits(num_worlds * stride);
  for (size_t world = 0; world < num_worlds; ++world) {
    stepped.value().NextWorld(stepped_bits.data() + world * stride);
  }
  EXPECT_EQ(batched_bits, stepped_bits);
}

TEST(PropagateEquivalenceTest, EstimatePnnMatchesEnumeration) {
  Figure1World w = MakeFigure1World();
  std::vector<ObjectId> all = {w.o1, w.o2};
  auto exact = ExactPnnByEnumeration(*w.db, all, w.q, w.T, 1, 100000);
  ASSERT_TRUE(exact.ok());
  MonteCarloOptions options;
  options.num_worlds = 20000;
  options.seed = 7;
  auto mc = EstimatePnn(*w.db, all, all, w.q, w.T, options);
  ASSERT_TRUE(mc.ok());
  ASSERT_EQ(mc.value().size(), exact.value().size());
  for (size_t i = 0; i < mc.value().size(); ++i) {
    EXPECT_EQ(mc.value()[i].object, exact.value()[i].object);
    EXPECT_NEAR(mc.value()[i].forall_prob, exact.value()[i].forall_prob, 0.02);
    EXPECT_NEAR(mc.value()[i].exists_prob, exact.value()[i].exists_prob, 0.02);
  }
}

}  // namespace
}  // namespace ust
