#include <gtest/gtest.h>

#include "query/adaptive.h"
#include "test_world.h"
#include "util/stats.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;

TEST(WilsonIntervalTest, CoversPointEstimate) {
  Interval ci = WilsonInterval(500, 1000, 0.05);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_NEAR(ci.hi - ci.lo, 2 * 1.96 * std::sqrt(0.25 / 1000.0), 0.002);
}

TEST(WilsonIntervalTest, EdgeCounts) {
  Interval zero = WilsonInterval(0, 100, 0.05);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  EXPECT_LT(zero.hi, 0.1);
  Interval all = WilsonInterval(100, 100, 0.05);
  EXPECT_DOUBLE_EQ(all.hi, 1.0);
  EXPECT_GT(all.lo, 0.9);
}

TEST(WilsonIntervalTest, ShrinksWithSamples) {
  Interval small = WilsonInterval(30, 100, 0.05);
  Interval big = WilsonInterval(3000, 10000, 0.05);
  EXPECT_LT(big.hi - big.lo, small.hi - small.lo);
}

TEST(WilsonIntervalTest, WidensWithConfidence) {
  Interval loose = WilsonInterval(50, 200, 0.2);
  Interval tight = WilsonInterval(50, 200, 0.001);
  EXPECT_LT(loose.hi - loose.lo, tight.hi - tight.lo);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(NormalQuantile(0.999), 3.090232, 1e-5);
  EXPECT_NEAR(NormalQuantile(1e-6), -4.753424, 1e-4);
}

SequentialOptions Opts(double epsilon, double delta, size_t max_worlds) {
  SequentialOptions o;
  o.epsilon = epsilon;
  o.delta = delta;
  o.max_worlds = max_worlds;
  o.seed = 11;
  return o;
}

TEST(SequentialEstimateTest, StopsAtHoeffdingTarget) {
  Figure1World world = MakeFigure1World();
  auto result = EstimatePnnSequential(*world.db, {world.o1, world.o2},
                                      {world.o1, world.o2}, world.q, world.T,
                                      Opts(0.02, 0.05, 1 << 20));
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result.value().epsilon_achieved, 0.02);
  // Stops within one batch (the executor's 512-world chunk, the default) of
  // the analytic Hoeffding count.
  size_t needed = HoeffdingSampleCount(0.02, 0.05);
  EXPECT_GE(result.value().worlds_used, needed);
  EXPECT_LE(result.value().worlds_used, needed + WorldSampler::kWorldChunk);
  // And the estimates are within the guaranteed bound of the exact values.
  EXPECT_NEAR(result.value().estimates[0].forall_prob, 0.75, 0.02);
  EXPECT_NEAR(result.value().estimates[1].exists_prob, 0.25, 0.02);
}

TEST(SequentialEstimateTest, MaxWorldsCapRespected) {
  Figure1World world = MakeFigure1World();
  auto result = EstimatePnnSequential(*world.db, {world.o1, world.o2},
                                      {world.o1}, world.q, world.T,
                                      Opts(0.001, 0.05, 1000));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().worlds_used, 1000u);
  EXPECT_GT(result.value().epsilon_achieved, 0.001);  // cap hit, bound honest
}

TEST(SequentialEstimateTest, InvalidOptionsRejected) {
  Figure1World world = MakeFigure1World();
  EXPECT_FALSE(EstimatePnnSequential(*world.db, {world.o1}, {world.o1},
                                     world.q, world.T, Opts(0.0, 0.05, 100))
                   .ok());
  EXPECT_FALSE(EstimatePnnSequential(*world.db, {world.o1}, {world.o1},
                                     world.q, world.T, Opts(0.1, 1.5, 100))
                   .ok());
  EXPECT_FALSE(EstimatePnnSequential(*world.db, {world.o1}, {world.o2},
                                     world.q, world.T, Opts(0.1, 0.05, 100))
                   .ok());
}

TEST(ThresholdDecisionTest, ClearCasesDecideEarly) {
  Figure1World world = MakeFigure1World();
  // tau = 0.5: P∀NN(o1) = 0.75 (clearly above), P∀NN(o2) = 0 (clearly below).
  auto result = DecideThresholdSequential(
      *world.db, {world.o1, world.o2}, {world.o1, world.o2}, world.q, world.T,
      0.5, PnnSemantics::kForall, Opts(0.01, 0.05, 1 << 20));
  ASSERT_TRUE(result.ok());
  const auto& decisions = result.value().decisions;
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_TRUE(decisions[0].decided);
  EXPECT_TRUE(decisions[0].qualifies);
  EXPECT_TRUE(decisions[1].decided);
  EXPECT_FALSE(decisions[1].qualifies);
  // Early stopping: far fewer worlds than the epsilon=0.01 Hoeffding count
  // (18445 at delta=0.05).
  EXPECT_LT(result.value().worlds_used, 5000u);
}

TEST(ThresholdDecisionTest, BorderlineCaseFallsBackToEstimate) {
  Figure1World world = MakeFigure1World();
  // tau exactly at P∀NN(o1) = 0.75: the CI straddles tau forever.
  auto result = DecideThresholdSequential(
      *world.db, {world.o1, world.o2}, {world.o1}, world.q, world.T, 0.75,
      PnnSemantics::kForall, Opts(0.01, 0.05, 4096));
  ASSERT_TRUE(result.ok());
  const auto& d = result.value().decisions[0];
  EXPECT_NEAR(d.estimate, 0.75, 0.05);
  // Either undecided at the cap, or decided after scraping past tau — both
  // are valid outcomes at the boundary; undecided is the typical one.
  if (!d.decided) {
    EXPECT_EQ(d.worlds_used, 4096u);
  }
}

TEST(ThresholdDecisionTest, ExistsSemantics) {
  Figure1World world = MakeFigure1World();
  // P∃NN(o1) = 1.0, P∃NN(o2) = 0.25.
  auto result = DecideThresholdSequential(
      *world.db, {world.o1, world.o2}, {world.o1, world.o2}, world.q, world.T,
      0.5, PnnSemantics::kExists, Opts(0.01, 0.05, 1 << 20));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().decisions[0].qualifies);
  EXPECT_FALSE(result.value().decisions[1].qualifies);
  EXPECT_TRUE(result.value().decisions[0].decided);
  EXPECT_TRUE(result.value().decisions[1].decided);
}

TEST(ThresholdDecisionTest, MatchesFixedSamplingDecisions) {
  Figure1World world = MakeFigure1World();
  for (double tau : {0.1, 0.4, 0.9}) {
    auto sequential = DecideThresholdSequential(
        *world.db, {world.o1, world.o2}, {world.o1, world.o2}, world.q,
        world.T, tau, PnnSemantics::kForall, Opts(0.01, 0.05, 1 << 18));
    ASSERT_TRUE(sequential.ok());
    // Ground truth: P∀NN(o1) = 0.75, P∀NN(o2) = 0.
    EXPECT_EQ(sequential.value().decisions[0].qualifies, 0.75 >= tau)
        << "tau=" << tau;
    EXPECT_EQ(sequential.value().decisions[1].qualifies, false);
  }
}

TEST(ThresholdDecisionTest, DecidedObjectsStopConsumingWork) {
  // worlds_used of an early-decided object is below the total.
  Figure1World world = MakeFigure1World();
  auto result = DecideThresholdSequential(
      *world.db, {world.o1, world.o2}, {world.o1, world.o2}, world.q, world.T,
      0.7, PnnSemantics::kForall, Opts(0.01, 0.05, 1 << 18));
  ASSERT_TRUE(result.ok());
  // o2 (P = 0) is decided almost immediately; o1 (P = 0.75 vs tau = 0.7)
  // needs more evidence.
  EXPECT_LE(result.value().decisions[1].worlds_used,
            result.value().decisions[0].worlds_used);
}

}  // namespace
}  // namespace ust
