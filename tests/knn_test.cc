// k-nearest-neighbor query semantics (Section 8): sampled P∀kNN / P∃kNN via
// the same possible-world machinery, validated against enumeration.
#include <gtest/gtest.h>

#include "index/ust_tree.h"
#include "query/engine.h"
#include "query/exact.h"
#include "query/monte_carlo.h"
#include "query/nn_kernel.h"
#include "query/pcnn.h"
#include "test_world.h"
#include "util/stats.h"

namespace ust {
namespace {

using testing::Figure1World;
using testing::MakeFigure1World;

MonteCarloOptions Opts(size_t worlds, int k) {
  MonteCarloOptions o;
  o.num_worlds = worlds;
  o.k = k;
  o.seed = 77;
  return o;
}

TEST(NnKernelTest, MarksSingleNearest) {
  StateSpace space({{0, 1}, {0, 2}, {0, 3}});
  std::vector<WorldTrajectory> world(3);
  for (int i = 0; i < 3; ++i) {
    world[i].alive = true;
    world[i].traj.start = 0;
    world[i].traj.states = {static_cast<StateId>(i)};
  }
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 0};
  std::vector<uint8_t> is_nn(3);
  MarkNearestNeighbors(space, world, q, T, 1, is_nn.data());
  EXPECT_EQ(is_nn[0], 1);
  EXPECT_EQ(is_nn[1], 0);
  EXPECT_EQ(is_nn[2], 0);
}

TEST(NnKernelTest, MarksKNearest) {
  StateSpace space({{0, 1}, {0, 2}, {0, 3}});
  std::vector<WorldTrajectory> world(3);
  for (int i = 0; i < 3; ++i) {
    world[i].alive = true;
    world[i].traj.start = 0;
    world[i].traj.states = {static_cast<StateId>(i)};
  }
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 0};
  std::vector<uint8_t> is_nn(3);
  MarkNearestNeighbors(space, world, q, T, 2, is_nn.data());
  EXPECT_EQ(is_nn[0], 1);
  EXPECT_EQ(is_nn[1], 1);
  EXPECT_EQ(is_nn[2], 0);
  MarkNearestNeighbors(space, world, q, T, 3, is_nn.data());
  EXPECT_EQ(is_nn[2], 1);
}

TEST(NnKernelTest, KLargerThanAliveCountMarksAllAlive) {
  StateSpace space({{0, 1}, {0, 2}});
  std::vector<WorldTrajectory> world(2);
  world[0].alive = true;
  world[0].traj.start = 0;
  world[0].traj.states = {0};
  world[1].alive = false;
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 0};
  std::vector<uint8_t> is_nn(2);
  MarkNearestNeighbors(space, world, q, T, 5, is_nn.data());
  EXPECT_EQ(is_nn[0], 1);
  EXPECT_EQ(is_nn[1], 0);  // dead objects are never marked
}

TEST(NnKernelTest, TiesMarkedForAll) {
  StateSpace space({{0, 1}});
  std::vector<WorldTrajectory> world(2);
  for (int i = 0; i < 2; ++i) {
    world[i].alive = true;
    world[i].traj.start = 0;
    world[i].traj.states = {0};
  }
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 0};
  std::vector<uint8_t> is_nn(2);
  MarkNearestNeighbors(space, world, q, T, 1, is_nn.data());
  EXPECT_EQ(is_nn[0], 1);
  EXPECT_EQ(is_nn[1], 1);
}

TEST(KnnQueryTest, K2IsCertainInTwoObjectWorld) {
  // With |D| = 2 every alive object is trivially within the 2 nearest.
  Figure1World world = MakeFigure1World();
  auto estimates = EstimatePnn(*world.db, {world.o1, world.o2},
                               {world.o1, world.o2}, world.q, world.T,
                               Opts(500, 2));
  ASSERT_TRUE(estimates.ok());
  for (const auto& e : estimates.value()) {
    EXPECT_DOUBLE_EQ(e.forall_prob, 1.0);
    EXPECT_DOUBLE_EQ(e.exists_prob, 1.0);
  }
}

TEST(KnnQueryTest, ProbabilitiesMonotoneInK) {
  // P(o within k nearest) grows with k, for both semantics.
  Figure1World world = MakeFigure1World();
  double prev_forall = 0.0, prev_exists = 0.0;
  for (int k = 1; k <= 2; ++k) {
    auto estimates = EstimatePnn(*world.db, {world.o1, world.o2}, {world.o2},
                                 world.q, world.T, Opts(5000, k));
    ASSERT_TRUE(estimates.ok());
    EXPECT_GE(estimates.value()[0].forall_prob + 1e-9, prev_forall);
    EXPECT_GE(estimates.value()[0].exists_prob + 1e-9, prev_exists);
    prev_forall = estimates.value()[0].forall_prob;
    prev_exists = estimates.value()[0].exists_prob;
  }
}

TEST(KnnQueryTest, MatchesEnumerationForKTwoThreeObjects) {
  // Three objects on a line with branching futures.
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  auto m = testing::MakeMatrix(
      4, {{{1, 0.5}, {0, 0.5}}, {{2, 0.5}, {1, 0.5}},
          {{3, 0.5}, {2, 0.5}}, {{3, 1.0}}});
  TrajectoryDatabase db(space);
  std::vector<ObjectId> ids;
  for (StateId s : {0u, 1u, 2u}) {
    auto obs = ObservationSeq::Create({{0, s}});
    ASSERT_TRUE(obs.ok());
    ids.push_back(db.AddObject(obs.MoveValue(), m, 2));
  }
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{0, 2};
  auto exact = ExactPnnByEnumeration(db, ids, q, T, /*k=*/2);
  auto mc = EstimatePnn(db, ids, ids, q, T, Opts(20000, 2));
  ASSERT_TRUE(exact.ok() && mc.ok());
  const double eps = HoeffdingEpsilon(20000, 0.01);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NEAR(mc.value()[i].forall_prob, exact.value()[i].forall_prob, eps);
    EXPECT_NEAR(mc.value()[i].exists_prob, exact.value()[i].exists_prob, eps);
  }
}

TEST(KnnEngineTest, EngineForallWithKTwo) {
  // Through the full engine: with |D| = 2 and k = 2 every alive-throughout
  // object qualifies with probability 1 at any tau <= 1.
  Figure1World world = MakeFigure1World();
  QueryEngine engine(*world.db);
  auto result = engine.Forall(world.q, world.T, 0.9, Opts(500, 2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().results.size(), 2u);
  for (const auto& r : result.value().results) {
    EXPECT_DOUBLE_EQ(r.prob, 1.0);
  }
}

TEST(KnnEngineTest, IndexedKnnAgreesWithUnindexed) {
  Figure1World world = MakeFigure1World();
  auto tree = UstTree::Build(*world.db);
  ASSERT_TRUE(tree.ok());
  QueryEngine indexed(*world.db, &tree.value());
  QueryEngine plain(*world.db);
  for (int k = 1; k <= 2; ++k) {
    auto a = indexed.Exists(world.q, world.T, 0.1, Opts(5000, k));
    auto b = plain.Exists(world.q, world.T, 0.1, Opts(5000, k));
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value().results.size(), b.value().results.size()) << "k=" << k;
    for (size_t i = 0; i < a.value().results.size(); ++i) {
      EXPECT_EQ(a.value().results[i].object, b.value().results[i].object);
      EXPECT_NEAR(a.value().results[i].prob, b.value().results[i].prob, 0.03);
    }
  }
}

TEST(KnnEngineTest, ContinuousKnnQuery) {
  // PC(k)NNQ (Section 8): with k = 2 in the two-object world, both objects
  // own the full interval with probability 1.
  Figure1World world = MakeFigure1World();
  QueryEngine engine(*world.db);
  auto result = engine.Continuous(world.q, world.T, 0.9, Opts(500, 2));
  ASSERT_TRUE(result.ok());
  auto maximal = FilterMaximal(result.value().pcnn.entries);
  ASSERT_EQ(maximal.size(), 2u);
  for (const auto& e : maximal) {
    EXPECT_EQ(e.tics, (std::vector<Tic>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(e.prob, 1.0);
  }
}

TEST(KnnQueryTest, SumOfForallKnnBoundedByK) {
  // At each world and tic exactly k objects are marked (when >= k alive and
  // no ties), so the forall probabilities sum to at most k.
  Figure1World world = MakeFigure1World();
  for (int k = 1; k <= 2; ++k) {
    auto estimates = EstimatePnn(*world.db, {world.o1, world.o2},
                                 {world.o1, world.o2}, world.q, world.T,
                                 Opts(2000, k));
    ASSERT_TRUE(estimates.ok());
    double sum = 0.0;
    for (const auto& e : estimates.value()) sum += e.forall_prob;
    EXPECT_LE(sum, k + 1e-9);
  }
}

}  // namespace
}  // namespace ust
