#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "model/adaptation.h"
#include "query/exact.h"
#include "test_world.h"
#include "util/rng.h"

namespace ust {
namespace {

using testing::MakeLineWorld;
using testing::MakeMatrix;

ObservationSeq Obs(std::vector<Observation> v) {
  auto r = ObservationSeq::Create(std::move(v));
  UST_CHECK(r.ok());
  return r.MoveValue();
}

// Exhaustively enumerate a-priori paths consistent with the observations and
// return the renormalized conditional distribution over paths. This is the
// ground truth the forward-backward adaptation must reproduce.
std::map<std::vector<StateId>, double> BruteForcePosterior(
    const TransitionMatrix& m, const ObservationSeq& obs) {
  std::map<std::vector<StateId>, double> result;
  const Tic t0 = obs.first_tic(), t1 = obs.last_tic();
  std::vector<std::pair<std::vector<StateId>, double>> frontier = {
      {{obs.first().state}, 1.0}};
  for (Tic t = t0 + 1; t <= t1; ++t) {
    std::vector<std::pair<std::vector<StateId>, double>> next;
    for (auto& [path, p] : frontier) {
      StateId cur = path.back();
      for (const auto* e = m.begin(cur); e != m.end(cur); ++e) {
        if (const Observation* o = obs.At(t);
            o != nullptr && o->state != e->first) {
          continue;
        }
        auto extended = path;
        extended.push_back(e->first);
        next.push_back({std::move(extended), p * e->second});
      }
    }
    frontier = std::move(next);
  }
  double total = 0.0;
  for (const auto& [path, p] : frontier) total += p;
  for (auto& [path, p] : frontier) result[path] = p / total;
  return result;
}

TEST(AdaptationTest, SingleObservationIsPointMass) {
  auto world = MakeLineWorld(5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{3, 2}}));
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().first_tic(), 3);
  EXPECT_EQ(model.value().last_tic(), 3);
  EXPECT_DOUBLE_EQ(model.value().MarginalAt(3).Prob(2), 1.0);
}

TEST(AdaptationTest, MarginalsAreIndicatorAtEveryObservation) {
  auto world = MakeLineWorld(12);
  ObservationSeq obs = Obs({{0, 2}, {4, 5}, {9, 3}});
  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());
  for (const Observation& o : obs.items()) {
    SparseDist marginal = model.value().MarginalAt(o.time);
    EXPECT_NEAR(marginal.Prob(o.state), 1.0, 1e-9)
        << "observation at t=" << o.time;
    EXPECT_EQ(marginal.size(), 1u);
  }
}

TEST(AdaptationTest, TransitionRowsAreStochastic) {
  auto world = MakeLineWorld(10);
  auto model =
      AdaptTransitionMatrices(*world.matrix, Obs({{0, 1}, {6, 7}, {10, 5}}));
  ASSERT_TRUE(model.ok());
  const PosteriorModel& pm = model.value();
  for (Tic t = pm.first_tic(); t < pm.last_tic(); ++t) {
    const auto& slice = pm.SliceAt(t);
    ASSERT_EQ(slice.row_offsets.size(), slice.support.size() + 1);
    for (size_t i = 0; i < slice.support.size(); ++i) {
      double sum = 0.0;
      for (uint32_t e = slice.row_offsets[i]; e < slice.row_offsets[i + 1];
           ++e) {
        EXPECT_GT(slice.tprobs[e], 0.0);
        sum += slice.tprobs[e];
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << "t=" << t << " state " << slice.support[i];
    }
  }
}

TEST(AdaptationTest, MarginalsSumToOneEveryTic) {
  auto world = MakeLineWorld(15, 0.3, 0.4);
  auto model =
      AdaptTransitionMatrices(*world.matrix, Obs({{0, 7}, {5, 10}, {12, 4}}));
  ASSERT_TRUE(model.ok());
  for (Tic t = model.value().first_tic(); t <= model.value().last_tic(); ++t) {
    EXPECT_NEAR(model.value().MarginalAt(t).Mass(), 1.0, 1e-9);
  }
}

TEST(AdaptationTest, MarginalConsistencyWithTransitions) {
  // marginal(t+1) must equal marginal(t) pushed through F(t).
  auto world = MakeLineWorld(10, 0.2, 0.5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 2}, {8, 6}}));
  ASSERT_TRUE(model.ok());
  const PosteriorModel& pm = model.value();
  for (Tic t = pm.first_tic(); t < pm.last_tic(); ++t) {
    const auto& slice = pm.SliceAt(t);
    const auto& next = pm.SliceAt(t + 1);
    std::vector<double> pushed(next.support.size(), 0.0);
    for (size_t i = 0; i < slice.support.size(); ++i) {
      for (uint32_t e = slice.row_offsets[i]; e < slice.row_offsets[i + 1];
           ++e) {
        pushed[slice.targets[e]] +=
            slice.marginal[i] * slice.tprobs[e];
      }
    }
    for (size_t j = 0; j < next.support.size(); ++j) {
      EXPECT_NEAR(pushed[j], next.marginal[j], 1e-9);
    }
  }
}

TEST(AdaptationTest, PosteriorSupportRespectsAprioriSupport) {
  auto world = MakeLineWorld(9, 0.25, 0.5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 4}, {6, 4}}));
  ASSERT_TRUE(model.ok());
  const PosteriorModel& pm = model.value();
  for (Tic t = pm.first_tic(); t < pm.last_tic(); ++t) {
    const auto& slice = pm.SliceAt(t);
    const auto& next = pm.SliceAt(t + 1);
    for (size_t i = 0; i < slice.support.size(); ++i) {
      for (uint32_t e = slice.row_offsets[i]; e < slice.row_offsets[i + 1];
           ++e) {
        StateId from = slice.support[i];
        StateId to = next.support[slice.targets[e]];
        EXPECT_GT(world.matrix->Prob(from, to), 0.0)
            << from << "->" << to << " not in the a-priori support";
      }
    }
  }
}

TEST(AdaptationTest, PosteriorEqualsBruteForceConditional) {
  // The key correctness property of Algorithm 2: trajectory probabilities
  // under the adapted model equal the renormalized a-priori probabilities of
  // observation-consistent paths.
  auto world = MakeLineWorld(6, 0.3, 0.3);
  ObservationSeq obs = Obs({{0, 2}, {3, 4}, {5, 3}});
  auto truth = BruteForcePosterior(*world.matrix, obs);
  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());
  auto enumerated = EnumerateWindowTrajectories(model.value(), 0, 5);
  ASSERT_TRUE(enumerated.ok());
  ASSERT_EQ(enumerated.value().size(), truth.size());
  for (const auto& wt : enumerated.value()) {
    auto it = truth.find(wt.traj.states);
    ASSERT_NE(it, truth.end());
    EXPECT_NEAR(wt.prob, it->second, 1e-9);
  }
}

TEST(AdaptationTest, PosteriorEqualsBruteForceWithIrregularObservations) {
  auto world = MakeLineWorld(7, 0.2, 0.45);
  ObservationSeq obs = Obs({{2, 1}, {4, 3}, {8, 2}, {9, 1}});
  auto truth = BruteForcePosterior(*world.matrix, obs);
  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());
  auto enumerated = EnumerateWindowTrajectories(model.value(), 2, 9);
  ASSERT_TRUE(enumerated.ok());
  ASSERT_EQ(enumerated.value().size(), truth.size());
  double total = 0.0;
  for (const auto& wt : enumerated.value()) {
    auto it = truth.find(wt.traj.states);
    ASSERT_NE(it, truth.end());
    EXPECT_NEAR(wt.prob, it->second, 1e-9);
    total += wt.prob;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(AdaptationTest, ContradictingObservationReported) {
  auto world = MakeLineWorld(20);
  // 10 hops needed in 2 tics: impossible.
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 0}, {2, 10}}));
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kContradiction);
}

TEST(AdaptationTest, ObservationOutsideDomainRejected) {
  auto world = MakeLineWorld(4);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 99}}));
  ASSERT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kInvalidArgument);
}

TEST(AdaptationTest, ExtensionPastLastObservationUsesApriori) {
  auto world = MakeLineWorld(9, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 4}});
  auto model = AdaptTransitionMatrices(*world.matrix, obs, /*extend_until=*/3);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().last_tic(), 3);
  // Marginals must match plain a-priori propagation.
  auto apriori = AprioriMarginals(*world.matrix, obs.first(), 4);
  for (Tic t = 0; t <= 3; ++t) {
    EXPECT_NEAR(
        SparseDist::L1Distance(model.value().MarginalAt(t), apriori[t]), 0.0,
        1e-9)
        << "t=" << t;
  }
}

TEST(AdaptationTest, ExtensionAfterMultiObservationChain) {
  auto world = MakeLineWorld(9, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 4}, {3, 6}});
  auto model = AdaptTransitionMatrices(*world.matrix, obs, /*extend_until=*/6);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model.value().last_tic(), 6);
  // At the last observation the marginal collapses, after it mass spreads.
  EXPECT_EQ(model.value().MarginalAt(3).size(), 1u);
  EXPECT_GT(model.value().MarginalAt(5).size(), 1u);
  // Rows remain stochastic in the extension.
  for (Tic t = 3; t < 6; ++t) {
    const auto& slice = model.value().SliceAt(t);
    for (size_t i = 0; i < slice.support.size(); ++i) {
      double sum = 0.0;
      for (uint32_t e = slice.row_offsets[i]; e < slice.row_offsets[i + 1]; ++e)
        sum += slice.tprobs[e];
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(AdaptationTest, ExtendUntilBeforeLastObservationRejected) {
  auto world = MakeLineWorld(5);
  auto model =
      AdaptTransitionMatrices(*world.matrix, Obs({{0, 1}, {4, 2}}), 2);
  EXPECT_FALSE(model.ok());
}

TEST(AdaptationTest, ForwardFilterCollapsesOnlyAtPastObservations) {
  auto world = MakeLineWorld(11, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 5}, {4, 7}, {8, 5}});
  auto marginals = ForwardFilterMarginals(*world.matrix, obs);
  ASSERT_TRUE(marginals.ok());
  ASSERT_EQ(marginals.value().size(), 9u);
  // Collapsed at each observation time.
  EXPECT_DOUBLE_EQ(marginals.value()[0].Prob(5), 1.0);
  EXPECT_DOUBLE_EQ(marginals.value()[4].Prob(7), 1.0);
  EXPECT_DOUBLE_EQ(marginals.value()[8].Prob(5), 1.0);
  // In-between the forward filter is wider than the posterior: it ignores the
  // future observation.
  auto posterior = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(posterior.ok());
  for (Tic t : {2, 6}) {
    EXPECT_GE(marginals.value()[t].size(),
              posterior.value().MarginalAt(t).size());
  }
}

TEST(AdaptationTest, PosteriorTightensTowardsNextObservation) {
  // Just before an observation, the posterior support must collapse towards
  // the observed state while the forward filter stays wide (the paper's
  // Figure 4 narrative).
  auto world = MakeLineWorld(21, 0.25, 0.5);
  ObservationSeq obs = Obs({{0, 10}, {10, 15}});
  auto posterior = AdaptTransitionMatrices(*world.matrix, obs);
  auto forward = ForwardFilterMarginals(*world.matrix, obs);
  ASSERT_TRUE(posterior.ok());
  ASSERT_TRUE(forward.ok());
  size_t post_size = posterior.value().MarginalAt(9).size();
  size_t fwd_size = forward.value()[9].size();
  EXPECT_LT(post_size, fwd_size);
}

TEST(AdaptationTest, UniformReachableMatchesSupport) {
  auto world = MakeLineWorld(9, 0.25, 0.5);
  auto model = AdaptTransitionMatrices(*world.matrix, Obs({{0, 4}, {4, 6}}));
  ASSERT_TRUE(model.ok());
  auto uniform = UniformReachableMarginals(model.value());
  ASSERT_EQ(uniform.size(), model.value().num_slices());
  for (Tic t = 0; t <= 4; ++t) {
    const auto& slice = model.value().SliceAt(t);
    EXPECT_EQ(uniform[t].Support(), slice.support);
    if (!slice.support.empty()) {
      EXPECT_NEAR(uniform[t].Prob(slice.support[0]),
                  1.0 / slice.support.size(), 1e-12);
    }
  }
}

TEST(AdaptationTest, AprioriMarginalsSpread) {
  auto world = MakeLineWorld(15, 0.25, 0.5);
  auto marginals = AprioriMarginals(*world.matrix, {0, 7}, 6);
  ASSERT_EQ(marginals.size(), 6u);
  // Support grows by one to each side per tic.
  for (size_t k = 0; k + 1 < marginals.size(); ++k) {
    EXPECT_LT(marginals[k].size(), marginals[k + 1].size());
  }
  EXPECT_EQ(marginals[5].size(), 11u);
}

// Parameterized sweep: for random observation patterns on the line world the
// posterior must be a valid distribution everywhere and match brute force.
class AdaptationSweep : public ::testing::TestWithParam<int> {};

TEST_P(AdaptationSweep, RandomObservationPatterns) {
  Rng rng(500 + GetParam());
  auto world = MakeLineWorld(8, 0.3, 0.4);
  // Random walk ground truth to produce consistent observations.
  std::vector<StateId> walk;
  StateId cur = static_cast<StateId>(rng.UniformInt(8));
  walk.push_back(cur);
  for (int t = 1; t <= 9; ++t) {
    std::vector<double> weights;
    std::vector<StateId> targets;
    for (const auto* e = world.matrix->begin(cur); e != world.matrix->end(cur);
         ++e) {
      targets.push_back(e->first);
      weights.push_back(e->second);
    }
    cur = targets[rng.Categorical(weights)];
    walk.push_back(cur);
  }
  // Observe a random subset of tics (always 0 and 9).
  std::vector<Observation> observations = {{0, walk[0]}};
  for (Tic t = 1; t < 9; ++t) {
    if (rng.Bernoulli(0.3)) observations.push_back({t, walk[t]});
  }
  observations.push_back({9, walk[9]});
  ObservationSeq obs = Obs(std::move(observations));

  auto model = AdaptTransitionMatrices(*world.matrix, obs);
  ASSERT_TRUE(model.ok());
  auto truth = BruteForcePosterior(*world.matrix, obs);
  auto enumerated = EnumerateWindowTrajectories(model.value(), 0, 9, 1000000);
  ASSERT_TRUE(enumerated.ok());
  ASSERT_EQ(enumerated.value().size(), truth.size());
  for (const auto& wt : enumerated.value()) {
    auto it = truth.find(wt.traj.states);
    ASSERT_NE(it, truth.end());
    EXPECT_NEAR(wt.prob, it->second, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdaptationSweep, ::testing::Range(0, 10));

}  // namespace
}  // namespace ust
