#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "gen/synthetic.h"
#include "io/text_io.h"
#include "test_world.h"

namespace ust {
namespace {

using testing::MakeLineWorld;

TEST(TextIoTest, StateSpaceRoundTrip) {
  StateSpace space({{0.25, 0.75}, {1.5, -2.25}, {1e-9, 3.14159265358979}});
  std::stringstream ss;
  ASSERT_TRUE(SaveStateSpace(space, ss).ok());
  auto loaded = LoadStateSpace(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), space.size());
  for (StateId s = 0; s < space.size(); ++s) {
    EXPECT_DOUBLE_EQ(loaded.value().coord(s).x, space.coord(s).x);
    EXPECT_DOUBLE_EQ(loaded.value().coord(s).y, space.coord(s).y);
  }
}

TEST(TextIoTest, EmptyStateSpaceRoundTrip) {
  StateSpace space;
  std::stringstream ss;
  ASSERT_TRUE(SaveStateSpace(space, ss).ok());
  auto loaded = LoadStateSpace(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(TextIoTest, TransitionMatrixRoundTrip) {
  auto world = MakeLineWorld(9, 0.3, 0.4);
  std::stringstream ss;
  ASSERT_TRUE(SaveTransitionMatrix(*world.matrix, ss).ok());
  auto loaded = LoadTransitionMatrix(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().num_states(), world.matrix->num_states());
  ASSERT_EQ(loaded.value().num_nonzeros(), world.matrix->num_nonzeros());
  for (StateId s = 0; s < 9; ++s) {
    for (StateId t = 0; t < 9; ++t) {
      EXPECT_DOUBLE_EQ(loaded.value().Prob(s, t), world.matrix->Prob(s, t));
    }
  }
}

TEST(TextIoTest, ObservationsRoundTrip) {
  auto world = MakeLineWorld(9, 0.3, 0.4);
  auto space = world.space;
  TrajectoryDatabase db(space);
  auto obs1 = ObservationSeq::Create({{0, 2}, {5, 6}, {9, 3}});
  auto obs2 = ObservationSeq::Create({{3, 1}});
  ASSERT_TRUE(obs1.ok() && obs2.ok());
  db.AddObject(obs1.MoveValue(), world.matrix);
  db.AddObject(obs2.MoveValue(), world.matrix, /*end_tic=*/7);

  std::stringstream ss;
  ASSERT_TRUE(SaveObservations(db, ss).ok());
  auto loaded = LoadObservations(ss, space, world.matrix);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  const auto& o0 = loaded.value().object(0);
  EXPECT_EQ(o0.observations().size(), 3u);
  EXPECT_EQ(o0.observations()[1].time, 5);
  EXPECT_EQ(o0.observations()[1].state, 6u);
  EXPECT_EQ(o0.last_tic(), 9);
  const auto& o1 = loaded.value().object(1);
  EXPECT_EQ(o1.first_tic(), 3);
  EXPECT_EQ(o1.last_tic(), 7);  // lifetime extension preserved
}

TEST(TextIoTest, TrajectoriesRoundTrip) {
  std::vector<Trajectory> trajectories;
  trajectories.push_back({5, {1, 2, 3, 2}});
  trajectories.push_back({0, {7}});
  std::stringstream ss;
  ASSERT_TRUE(SaveTrajectories(trajectories, ss).ok());
  auto loaded = LoadTrajectories(ss);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[0].start, 5);
  EXPECT_EQ(loaded.value()[0].states, (std::vector<StateId>{1, 2, 3, 2}));
  EXPECT_EQ(loaded.value()[1].states, (std::vector<StateId>{7}));
}

TEST(TextIoTest, GeneratedWorldRoundTripPreservesQueries) {
  // The acid test: persist a generated world and verify the posterior models
  // built from the reloaded artifacts are identical.
  SyntheticConfig config;
  config.num_states = 300;
  config.num_objects = 6;
  config.lifetime = 20;
  config.obs_interval = 5;
  config.horizon = 20;
  config.seed = 9;
  auto world = GenerateSyntheticWorld(config);
  ASSERT_TRUE(world.ok());

  std::stringstream space_ss, matrix_ss, obs_ss;
  ASSERT_TRUE(SaveStateSpace(*world.value().space, space_ss).ok());
  ASSERT_TRUE(SaveTransitionMatrix(*world.value().matrix, matrix_ss).ok());
  ASSERT_TRUE(SaveObservations(*world.value().db, obs_ss).ok());

  auto space = LoadStateSpace(space_ss);
  auto matrix = LoadTransitionMatrix(matrix_ss);
  ASSERT_TRUE(space.ok() && matrix.ok());
  auto db = LoadObservations(
      obs_ss, std::make_shared<const StateSpace>(space.MoveValue()),
      std::make_shared<const TransitionMatrix>(matrix.MoveValue()));
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db.value().size(), world.value().db->size());
  for (ObjectId id = 0; id < db.value().size(); ++id) {
    auto original = world.value().db->object(id).Posterior();
    auto reloaded = db.value().object(id).Posterior();
    ASSERT_TRUE(original.ok() && reloaded.ok());
    ASSERT_EQ(original.value()->num_slices(), reloaded.value()->num_slices());
    for (Tic t = original.value()->first_tic();
         t <= original.value()->last_tic(); ++t) {
      EXPECT_NEAR(SparseDist::L1Distance(original.value()->MarginalAt(t),
                                         reloaded.value()->MarginalAt(t)),
                  0.0, 1e-12);
    }
  }
}

TEST(TextIoTest, FileRoundTrip) {
  auto world = MakeLineWorld(5);
  const std::string path = ::testing::TempDir() + "/ustq_io_test_matrix.txt";
  ASSERT_TRUE(SaveTransitionMatrixFile(*world.matrix, path).ok());
  auto loaded = LoadTransitionMatrixFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nonzeros(), world.matrix->num_nonzeros());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadTransitionMatrixFile(path).ok());
}

TEST(TextIoTest, MalformedInputsRejected) {
  {
    std::stringstream ss("not a header\n3\n");
    EXPECT_EQ(LoadStateSpace(ss).status().code(),
              StatusCode::kInvalidArgument);
  }
  {
    std::stringstream ss("ustq-statespace v1\n2\n0.5 0.5\n");  // truncated
    EXPECT_FALSE(LoadStateSpace(ss).ok());
  }
  {
    std::stringstream ss("ustq-statespace v1\nxyz\n");
    EXPECT_FALSE(LoadStateSpace(ss).ok());
  }
  {
    std::stringstream ss("ustq-matrix v1\n2 1\n0 5 1.0\n");  // bad target
    EXPECT_FALSE(LoadTransitionMatrix(ss).ok());
  }
  {
    // Non-stochastic row must be rejected by matrix validation.
    std::stringstream ss("ustq-matrix v1\n1 1\n0 0 0.4\n");
    EXPECT_FALSE(LoadTransitionMatrix(ss).ok());
  }
  {
    std::stringstream ss("ustq-observations v1\n1\n9 2\n5 1\n3 0\n");
    auto space = std::make_shared<const StateSpace>(
        std::vector<Point2>{{0, 0}, {1, 1}});
    // Observation times decreasing: ObservationSeq validation must fire.
    EXPECT_FALSE(LoadObservations(ss, space, nullptr).ok());
  }
}

TEST(TextIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss(
      "# generated by a test\n\nustq-statespace v1\n# count\n2\n0 0\n\n1 1\n");
  auto loaded = LoadStateSpace(ss);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().size(), 2u);
}

TEST(TextIoTest, ObservationStateOutsideSpaceRejected) {
  std::stringstream ss("ustq-observations v1\n1\n5 1\n5 99\n");
  auto space =
      std::make_shared<const StateSpace>(std::vector<Point2>{{0, 0}});
  EXPECT_FALSE(LoadObservations(ss, space, nullptr).ok());
}

}  // namespace
}  // namespace ust
