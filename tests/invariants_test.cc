// Randomized end-to-end property sweep: on freshly generated worlds with
// random queries, every documented invariant of the query stack must hold
// simultaneously. Parameterized over seeds so each instance explores a
// different world.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/adaptive.h"
#include "query/engine.h"
#include "query/markov_approx.h"
#include "query/pcnn.h"
#include "query/snapshot.h"

namespace ust {
namespace {

struct WorldUnderTest {
  SyntheticWorld world;
  std::unique_ptr<UstTree> index;
  TimeInterval T{0, 0};
  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
};

WorldUnderTest MakeWorld(uint64_t seed) {
  SyntheticConfig config;
  config.num_states = 500;
  config.num_objects = 14;
  config.lifetime = 20;
  config.obs_interval = 5;
  config.horizon = 28;
  config.seed = 1000 + seed;
  auto world = GenerateSyntheticWorld(config);
  UST_CHECK(world.ok());
  WorldUnderTest wut;
  wut.world = world.MoveValue();
  auto tree = UstTree::Build(*wut.world.db);
  UST_CHECK(tree.ok());
  wut.index = std::make_unique<UstTree>(tree.MoveValue());
  wut.T = BusiestInterval(*wut.world.db, 6);
  Rng rng(seed);
  wut.q = RandomQueryState(*wut.world.space, rng);
  return wut;
}

class InvariantSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(InvariantSweep, QuerySemanticsInvariants) {
  WorldUnderTest wut = MakeWorld(GetParam());
  const TrajectoryDatabase& db = *wut.world.db;
  QueryEngine engine(db, wut.index.get());
  MonteCarloOptions options;
  options.num_worlds = 800;
  options.seed = GetParam();
  auto forall = engine.Forall(wut.q, wut.T, 0.0, options);
  auto exists = engine.Exists(wut.q, wut.T, 0.0, options);
  ASSERT_TRUE(forall.ok());
  ASSERT_TRUE(exists.ok());

  // (1) Probabilities are valid and P∀ <= P∃ per object.
  std::map<ObjectId, double> exists_probs;
  for (const auto& r : exists.value().results) {
    EXPECT_GE(r.prob, 0.0);
    EXPECT_LE(r.prob, 1.0);
    exists_probs[r.object] = r.prob;
  }
  for (const auto& r : forall.value().results) {
    if (r.prob > 0.0) {
      ASSERT_TRUE(exists_probs.count(r.object))
          << "forall-positive object missing from exists results";
      EXPECT_LE(r.prob, exists_probs[r.object] + 0.05);
    }
  }

  // (2) Forall probabilities sum to <= 1 (+MC slack).
  double forall_sum = 0.0;
  for (const auto& r : forall.value().results) forall_sum += r.prob;
  EXPECT_LE(forall_sum, 1.0 + 0.05);

  // (3) Candidates/influencers consistent.
  EXPECT_LE(forall.value().num_candidates, forall.value().num_influencers);
}

TEST_P(InvariantSweep, PruningPreservesResults) {
  WorldUnderTest wut = MakeWorld(GetParam());
  const TrajectoryDatabase& db = *wut.world.db;
  QueryEngine indexed(db, wut.index.get());
  QueryEngine full(db);
  MonteCarloOptions options;
  options.num_worlds = 1500;
  options.seed = 7 * GetParam() + 1;
  auto a = indexed.Forall(wut.q, wut.T, 0.1, options);
  auto b = full.Forall(wut.q, wut.T, 0.1, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::map<ObjectId, double> pa, pb;
  for (const auto& r : a.value().results) pa[r.object] = r.prob;
  for (const auto& r : b.value().results) pb[r.object] = r.prob;
  for (const auto& [o, p] : pb) {
    if (p < 0.15) continue;  // threshold-edge objects may flip by MC noise
    EXPECT_TRUE(pa.count(o)) << "object " << o << " lost by pruning";
  }
  for (const auto& [o, p] : pa) {
    if (p < 0.15) continue;
    EXPECT_TRUE(pb.count(o));
    EXPECT_NEAR(pb[o], p, 0.08);
  }
}

TEST_P(InvariantSweep, PcnnLatticeConsistency) {
  WorldUnderTest wut = MakeWorld(GetParam());
  QueryEngine engine(*wut.world.db, wut.index.get());
  MonteCarloOptions options;
  options.num_worlds = 600;
  options.seed = GetParam() + 99;
  auto pcnn = engine.Continuous(wut.q, wut.T, 0.3, options);
  ASSERT_TRUE(pcnn.ok());
  // Every reported set respects tau; subsets of reported sets (per object)
  // must be present as well (Apriori completeness at level boundaries).
  std::map<ObjectId, std::set<std::vector<Tic>>> sets;
  for (const auto& e : pcnn.value().pcnn.entries) {
    EXPECT_GE(e.prob, 0.3);
    sets[e.object].insert(e.tics);
  }
  for (const auto& [object, tic_sets] : sets) {
    for (const auto& tics : tic_sets) {
      if (tics.size() <= 1) continue;
      for (size_t skip = 0; skip < tics.size(); ++skip) {
        std::vector<Tic> subset;
        for (size_t i = 0; i < tics.size(); ++i) {
          if (i != skip) subset.push_back(tics[i]);
        }
        EXPECT_TRUE(tic_sets.count(subset))
            << "object " << object << ": qualifying set lacks a subset";
      }
    }
  }
  // Maximal filtering never reports a set that another reported superset of
  // the same object would subsume.
  auto maximal = FilterMaximal(pcnn.value().pcnn.entries);
  for (const auto& m : maximal) {
    for (const auto& e : pcnn.value().pcnn.entries) {
      if (e.object != m.object || e.tics.size() <= m.tics.size()) continue;
      EXPECT_FALSE(std::includes(e.tics.begin(), e.tics.end(),
                                 m.tics.begin(), m.tics.end()))
          << "maximal entry subsumed by a larger qualifying set";
    }
  }
}

TEST_P(InvariantSweep, SequentialAgreesWithFixedSampling) {
  WorldUnderTest wut = MakeWorld(GetParam());
  const TrajectoryDatabase& db = *wut.world.db;
  std::vector<ObjectId> ids = db.AliveThroughout(wut.T.start, wut.T.end);
  if (ids.empty()) GTEST_SKIP();
  SequentialOptions seq;
  seq.epsilon = 0.03;
  seq.delta = 0.05;
  seq.seed = GetParam();
  auto sequential =
      EstimatePnnSequential(db, ids, ids, wut.q, wut.T, seq);
  ASSERT_TRUE(sequential.ok());
  MonteCarloOptions fixed;
  fixed.num_worlds = 4000;
  fixed.seed = GetParam() + 5;
  auto reference = EstimatePnn(db, ids, ids, wut.q, wut.T, fixed);
  ASSERT_TRUE(reference.ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NEAR(sequential.value().estimates[i].forall_prob,
                reference.value()[i].forall_prob, 0.06);
    EXPECT_NEAR(sequential.value().estimates[i].exists_prob,
                reference.value()[i].exists_prob, 0.06);
  }
}

TEST_P(InvariantSweep, SnapshotBoundsRelativeToSampler) {
  WorldUnderTest wut = MakeWorld(GetParam());
  const TrajectoryDatabase& db = *wut.world.db;
  std::vector<ObjectId> ids = db.AliveThroughout(wut.T.start, wut.T.end);
  if (ids.size() < 2) GTEST_SKIP();
  auto ss = SnapshotEstimatePnn(db, ids, wut.q, wut.T);
  ASSERT_TRUE(ss.ok());
  MonteCarloOptions options;
  options.num_worlds = 3000;
  options.seed = GetParam() + 17;
  auto sa = EstimatePnn(db, ids, ids, wut.q, wut.T, options);
  ASSERT_TRUE(sa.ok());
  for (size_t i = 0; i < ids.size(); ++i) {
    // Certain outcomes must agree exactly; probabilistic ones stay in-range.
    if (sa.value()[i].forall_prob > 0.999) {
      EXPECT_GT(ss.value()[i].forall_prob, 0.95);
    }
    EXPECT_GE(ss.value()[i].forall_prob, -1e-12);
    EXPECT_LE(ss.value()[i].exists_prob, 1.0 + 1e-12);
  }
}

TEST_P(InvariantSweep, MarkovApproxWithinSanityOfSampler) {
  WorldUnderTest wut = MakeWorld(GetParam());
  const TrajectoryDatabase& db = *wut.world.db;
  std::vector<ObjectId> ids = db.AliveThroughout(wut.T.start, wut.T.end);
  if (ids.size() < 2 || ids.size() > 8) GTEST_SKIP();
  MonteCarloOptions options;
  options.num_worlds = 4000;
  options.seed = GetParam() + 23;
  auto sa = EstimatePnn(db, ids, ids, wut.q, wut.T, options);
  ASSERT_TRUE(sa.ok());
  for (size_t i = 0; i < std::min<size_t>(ids.size(), 3); ++i) {
    std::vector<ObjectId> competitors;
    for (ObjectId id : ids) {
      if (id != ids[i]) competitors.push_back(id);
    }
    auto ma =
        ApproximateForallNnMarkov(db, ids[i], competitors, wut.q, wut.T);
    ASSERT_TRUE(ma.ok());
    EXPECT_NEAR(ma.value(), sa.value()[i].forall_prob, 0.12)
        << "object " << ids[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantSweep, ::testing::Range<uint64_t>(0, 8));

}  // namespace
}  // namespace ust
