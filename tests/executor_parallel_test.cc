// Tests of the intra-query-parallel refinement backends (DESIGN.md §4.2):
// markov_approx shards per-target chain-rule factors and exact shards
// fixed-size enumeration blocks over the pool — both must reproduce their
// serial bytes exactly at any thread count (the determinism contract), and
// the planner's parallelism-aware cost model must stay a pure function of
// its options.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "query/exact.h"
#include "query/executor.h"
#include "query/markov_approx.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace ust {
namespace {

class ExecutorParallelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 500;
    config.num_objects = 6;
    config.lifetime = 30;
    config.obs_interval = 4;  // tight diamonds: enumeration stays feasible
    config.horizon = 40;
    config.seed = 31;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    T_ = BusiestInterval(*world_->db, 4);
    for (size_t i = 0; i < world_->db->size(); ++i) {
      const ObjectId id = static_cast<ObjectId>(i);
      participants_.push_back(id);
      if (world_->db->object(id).AliveThroughout(T_.start, T_.end)) {
        targets_.push_back(id);
      }
    }
    ASSERT_GE(targets_.size(), 2u);
    Rng rng(3);
    q_ = RandomQueryState(*world_->space, rng);
  }

  PnnTask MakeTask(const DbSnapshot& snap) const {
    PnnTask task;
    task.db = &snap;
    task.participants = &participants_;
    task.targets = &targets_;
    task.q = &q_;
    task.T = T_;
    task.mc.k = 1;
    return task;
  }

  std::unique_ptr<SyntheticWorld> world_;
  TimeInterval T_{0, 0};
  std::vector<ObjectId> participants_;
  std::vector<ObjectId> targets_;
  QueryTrajectory q_ = QueryTrajectory::FromPoint({0, 0});
};

TEST_F(ExecutorParallelTest, MarkovParallelMatchesSerialBitwise) {
  DbSnapshot snap = world_->db->Snapshot();
  const PnnTask task = MakeTask(snap);
  const Executor& markov = GetExecutor(ExecutorKind::kMarkovApprox);
  ASSERT_TRUE(markov.Supports(QueryKind::kForall, task));

  ExecContext serial_ctx;  // no pool: the serial reference
  auto serial = markov.Estimate(task, serial_ctx);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial.value().size(), targets_.size());
  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    ExecContext ctx;
    ctx.pool = &pool;
    auto parallel = markov.Estimate(task, ctx);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    ASSERT_EQ(parallel.value().size(), serial.value().size());
    for (size_t i = 0; i < serial.value().size(); ++i) {
      EXPECT_EQ(parallel.value()[i].object, serial.value()[i].object);
      // Bitwise: sharding per target must not touch a single float.
      EXPECT_EQ(parallel.value()[i].forall_prob,
                serial.value()[i].forall_prob)
          << "threads=" << threads << " target " << i;
    }
  }
}

TEST_F(ExecutorParallelTest, MarkovBatchMatchesPerTargetCalls) {
  // The batch entry point (shared augmented strips, per-worker workspaces)
  // must equal independent per-target calls — the pre-PR code path.
  DbSnapshot snap = world_->db->Snapshot();
  auto batch = ApproximateForallNnMarkovBatch(snap, targets_, participants_,
                                              q_, T_, nullptr);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < targets_.size(); ++i) {
    std::vector<ObjectId> competitors;
    for (ObjectId p : participants_) {
      if (p != targets_[i]) competitors.push_back(p);
    }
    auto single =
        ApproximateForallNnMarkov(snap, targets_[i], competitors, q_, T_);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[i], single.value()) << "target " << i;
  }
}

/// Greedy subset of `participants_` whose enumeration cross product lands
/// in (kEnumWorldBlock, cap]: big enough to span several blocks (so the
/// parallel reduction is actually exercised), small enough to sweep fast.
std::vector<ObjectId> EnumerableSubset(const DbSnapshot& snap,
                                       const std::vector<ObjectId>& all,
                                       const TimeInterval& T, double cap) {
  std::vector<ObjectId> subset;
  double combinations = 1.0;
  for (ObjectId p : all) {
    auto posterior = snap.object(p).Posterior();
    if (!posterior.ok()) continue;
    Tic ws = std::max(T.start, posterior.value()->first_tic());
    Tic we = std::min(T.end, posterior.value()->last_tic());
    size_t count = 1;
    if (ws <= we) {
      auto worlds = EnumerateWindowTrajectories(*posterior.value(), ws, we,
                                                static_cast<size_t>(cap));
      if (!worlds.ok()) continue;
      count = std::max<size_t>(worlds.value().size(), 1);
    }
    if (combinations * static_cast<double>(count) > cap) continue;
    combinations *= static_cast<double>(count);
    subset.push_back(p);
  }
  EXPECT_GT(combinations, static_cast<double>(kEnumWorldBlock))
      << "workload too small to exercise multi-block reduction";
  return subset;
}

TEST_F(ExecutorParallelTest, ExactParallelMatchesSerialBitwise) {
  DbSnapshot snap = world_->db->Snapshot();
  const std::vector<ObjectId> participants =
      EnumerableSubset(snap, participants_, T_, 300000.0);
  auto serial = ExactPnnByEnumeration(snap, participants, q_, T_, 1,
                                      400000, nullptr);
  ASSERT_TRUE(serial.ok()) << serial.status().message();

  for (int threads : {1, 2, 4}) {
    ThreadPool pool(threads);
    auto parallel = ExactPnnByEnumeration(snap, participants, q_, T_, 1,
                                          400000, &pool);
    ASSERT_TRUE(parallel.ok()) << "threads=" << threads;
    ASSERT_EQ(parallel.value().size(), serial.value().size());
    for (size_t i = 0; i < serial.value().size(); ++i) {
      EXPECT_EQ(parallel.value()[i].object, serial.value()[i].object);
      EXPECT_EQ(parallel.value()[i].forall_prob,
                serial.value()[i].forall_prob)
          << "threads=" << threads << " participant " << i;
      EXPECT_EQ(parallel.value()[i].exists_prob,
                serial.value()[i].exists_prob)
          << "threads=" << threads << " participant " << i;
    }
  }
}

TEST_F(ExecutorParallelTest, ExactExecutorUsesPoolAndMatches) {
  DbSnapshot snap = world_->db->Snapshot();
  const std::vector<ObjectId> participants =
      EnumerableSubset(snap, participants_, T_, 300000.0);
  std::vector<ObjectId> targets;
  for (ObjectId p : participants) {
    if (world_->db->object(p).AliveThroughout(T_.start, T_.end)) {
      targets.push_back(p);
    }
  }
  ASSERT_FALSE(targets.empty());
  PnnTask task = MakeTask(snap);
  task.participants = &participants;
  task.targets = &targets;
  task.enum_max_worlds = 400000;
  const Executor& exact = GetExecutor(ExecutorKind::kExact);
  ExecContext serial_ctx;
  auto serial = exact.Estimate(task, serial_ctx);
  ASSERT_TRUE(serial.ok());
  ThreadPool pool(4);
  ExecContext ctx;
  ctx.pool = &pool;
  auto parallel = exact.Estimate(task, ctx);
  ASSERT_TRUE(parallel.ok());
  for (size_t i = 0; i < serial.value().size(); ++i) {
    EXPECT_EQ(parallel.value()[i].forall_prob, serial.value()[i].forall_prob);
    EXPECT_EQ(parallel.value()[i].exists_prob, serial.value()[i].exists_prob);
  }
}

TEST(PlannerParallelismTest, AssumedParallelismRaisesTheExactPrecisionBar) {
  PlannerOptions options;
  options.exact_min_precision = 1000;
  // Serial: 4096 requested worlds clear the 1000-world bar -> enumeration.
  EXPECT_EQ(PlanExecutor(QueryKind::kForall, 2, 2, 3, 4096, 1, options),
            ExecutorKind::kExact);
  // An 8-wide tier makes sampling ~8x faster (4096/512 = 8 chunks saturate
  // all 8 workers), so the bar rises to 8000 worlds -> sampling wins.
  options.assumed_parallelism = 8;
  EXPECT_EQ(PlanExecutor(QueryKind::kForall, 2, 2, 3, 4096, 1, options),
            ExecutorKind::kMonteCarlo);
  // MC parallelism saturates at num_worlds/512: 1023 worlds fill a single
  // chunk, so the 8 assumed workers earn sampling no credit at all — the
  // bar stays 1000 and enumeration still wins.
  EXPECT_EQ(PlanExecutor(QueryKind::kForall, 2, 2, 3, 1023, 1, options),
            ExecutorKind::kExact);
  // Pure function of options: the default (1) reproduces the old plans.
  options.assumed_parallelism = 1;
  EXPECT_EQ(PlanExecutor(QueryKind::kForall, 2, 2, 3, 4096, 1, options),
            ExecutorKind::kExact);
}

}  // namespace
}  // namespace ust
