// Tests of the shared world arena (query/world_arena.h + the session/server
// wiring): a hot (interval, seed) group's worlds are materialized once and
// every later Monte-Carlo spec evaluates against them — with outcomes
// bit-identical to live per-spec sampling at any thread count, any
// {lanes, morsel_specs, steal} schedule, and any SIMD dispatch level. The
// arena is purely an amortization: `used_arena` and the counters are the
// only observable difference.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "query/world_arena.h"
#include "server/query_server.h"
#include "server/session_cache.h"
#include "util/rng.h"
#include "util/simd.h"

namespace ust {
namespace {

bool SameOutcome(const QueryOutcome& a, const QueryOutcome& b) {
  if (a.status.code() != b.status.code()) return false;
  if (a.kind != b.kind || a.executor != b.executor) return false;
  if (a.pnn.results.size() != b.pnn.results.size()) return false;
  for (size_t i = 0; i < a.pnn.results.size(); ++i) {
    if (a.pnn.results[i].object != b.pnn.results[i].object) return false;
    if (a.pnn.results[i].prob != b.pnn.results[i].prob) return false;  // bitwise
  }
  if (a.pnn.num_candidates != b.pnn.num_candidates) return false;
  if (a.pnn.num_influencers != b.pnn.num_influencers) return false;
  if (a.pcnn.pcnn.entries.size() != b.pcnn.pcnn.entries.size()) return false;
  for (size_t i = 0; i < a.pcnn.pcnn.entries.size(); ++i) {
    const PcnnEntry& x = a.pcnn.pcnn.entries[i];
    const PcnnEntry& y = b.pcnn.pcnn.entries[i];
    if (x.object != y.object || x.tics != y.tics || x.prob != y.prob) {
      return false;
    }
  }
  return true;
}

class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 20;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }

  TrajectoryDatabase& db() { return *world_->db; }

  /// A hot group: every spec shares (T, seed, num_worlds) — the arena key —
  /// while query points, k and semantics vary. Pinned to Monte-Carlo: the
  /// arena only serves the sampling backend.
  std::vector<QuerySpec> MakeHotSpecs(size_t n) const {
    Rng rng(5);
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < n; ++i) {
      QuerySpec spec;
      spec.kind = i % 4 == 3 ? QueryKind::kContinuous
                  : i % 4 == 2 ? QueryKind::kExists
                               : QueryKind::kForall;
      spec.q = RandomQueryState(*world_->space, rng);
      spec.T = T_;
      spec.tau = spec.kind == QueryKind::kContinuous ? 0.3 : 0.05;
      spec.mc.num_worlds = 400;
      spec.mc.seed = 4242;
      spec.mc.k = i % 4 == 1 ? 3 : 1;  // exercise the k>1 reduction too
      spec.backend = ExecutorKind::kMonteCarlo;
      specs.push_back(spec);
    }
    return specs;
  }

  /// Reference outcomes with arenas disabled entirely (live sampling).
  std::vector<QueryOutcome> Reference(const std::vector<QuerySpec>& specs) {
    SessionOptions options;
    options.arena_min_uses = 0;
    QuerySession session(db(), index_.get(), options);
    return session.RunAll(specs);
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(ArenaTest, ArenaOutcomesBitwiseEqualLiveSamplingAtAnyThreadCount) {
  const std::vector<QuerySpec> specs = MakeHotSpecs(8);
  const std::vector<QueryOutcome> expected = Reference(specs);
  for (const QueryOutcome& out : expected) {
    ASSERT_TRUE(out.status.ok());
    EXPECT_FALSE(out.used_arena);  // arenas were off
  }
  for (int threads : {1, 2, 4}) {
    SessionOptions options;
    options.threads = threads;
    options.arena_min_uses = 1;  // build on first use
    QuerySession session(db(), index_.get(), options);
    auto outcomes = session.RunAll(specs);
    ASSERT_EQ(outcomes.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
      ASSERT_TRUE(outcomes[i].status.ok()) << outcomes[i].status.ToString();
      EXPECT_TRUE(SameOutcome(outcomes[i], expected[i]))
          << "threads=" << threads << " spec " << i;
    }
    const ArenaStats stats = session.arena_stats();
    EXPECT_EQ(stats.builds, 1u) << "threads=" << threads;
    EXPECT_GE(stats.spec_reuses, 1u) << "threads=" << threads;
    EXPECT_GT(stats.bytes, 0u) << "threads=" << threads;
    if (threads == 1) {
      // Serial: the first spec builds, every spec (it included) evaluates
      // against the arena — no concurrent caller ever races the build.
      EXPECT_EQ(stats.spec_reuses, specs.size());
      for (const QueryOutcome& out : outcomes) EXPECT_TRUE(out.used_arena);
    }
  }
}

TEST_F(ArenaTest, BuildOnSecondUsePolicy) {
  const std::vector<QuerySpec> specs = MakeHotSpecs(4);
  SessionOptions options;
  options.arena_min_uses = 2;  // the serving default
  QuerySession session(db(), index_.get(), options);
  QueryOutcome first = session.Run(specs[0]);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.used_arena);  // cold: sampled live, no build yet
  EXPECT_EQ(session.arena_stats().builds, 0u);
  QueryOutcome second = session.Run(specs[1]);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.used_arena);  // the group proved hot: built + used
  EXPECT_EQ(session.arena_stats().builds, 1u);
  // A cold key never pays a build.
  QuerySpec other = specs[2];
  other.mc.seed = 999;
  QueryOutcome cold = session.Run(other);
  ASSERT_TRUE(cold.status.ok());
  EXPECT_FALSE(cold.used_arena);
  EXPECT_EQ(session.arena_stats().builds, 1u);
  // And the outcomes still match live sampling bit for bit.
  const std::vector<QueryOutcome> expected = Reference(specs);
  EXPECT_TRUE(SameOutcome(first, expected[0]));
  EXPECT_TRUE(SameOutcome(second, expected[1]));
}

TEST_F(ArenaTest, PrefixPropertyServesSmallerWorldCounts) {
  // The first W' worlds of a W-world arena are bit-identical to a W'-world
  // sample (BatchWalk forks per world in world order), so a spec asking for
  // fewer worlds than the arena holds is served from its prefix.
  std::vector<QuerySpec> specs = MakeHotSpecs(3);
  specs[1].mc.num_worlds = 256;  // smaller than the 400-world arena
  specs[2].mc.num_worlds = 512;  // larger: must fall back to live sampling
  const std::vector<QueryOutcome> expected = Reference(specs);
  SessionOptions options;
  options.arena_min_uses = 1;
  QuerySession session(db(), index_.get(), options);
  QueryOutcome big = session.Run(specs[0]);  // builds at 400 worlds
  QueryOutcome prefix = session.Run(specs[1]);
  QueryOutcome larger = session.Run(specs[2]);
  ASSERT_TRUE(big.status.ok());
  ASSERT_TRUE(prefix.status.ok());
  ASSERT_TRUE(larger.status.ok());
  EXPECT_TRUE(big.used_arena);
  EXPECT_TRUE(prefix.used_arena);
  EXPECT_FALSE(larger.used_arena);
  EXPECT_TRUE(SameOutcome(big, expected[0]));
  EXPECT_TRUE(SameOutcome(prefix, expected[1]));
  EXPECT_TRUE(SameOutcome(larger, expected[2]));
}

TEST_F(ArenaTest, ServerScheduleMatrixPreservesBitsWithArenas) {
  // The serving tier with arenas on: whatever the lane count, morsel size
  // and steal schedule, outcomes equal the arena-off serial reference —
  // and the cache-level counters observe the sharing.
  const std::vector<QuerySpec> specs = MakeHotSpecs(24);
  const std::vector<QueryOutcome> expected = Reference(specs);
  struct Config {
    int lanes;
    size_t morsel_specs;
    bool steal;
  };
  for (const Config& config : std::vector<Config>{
           {1, 4, false}, {2, 2, true}, {4, 1, true}}) {
    ServerOptions options;
    options.lanes = config.lanes;
    options.morsel_specs = config.morsel_specs;
    options.steal = config.steal;
    options.arena_min_uses = 1;
    options.max_batch_size = specs.size();
    QueryServer server(db(), index_.get(), options);
    server.Pause();
    std::vector<std::future<QueryOutcome>> futures;
    for (const QuerySpec& spec : specs) futures.push_back(server.Submit(spec));
    server.Resume();
    for (size_t i = 0; i < specs.size(); ++i) {
      EXPECT_TRUE(SameOutcome(futures[i].get(), expected[i]))
          << "lanes=" << config.lanes << " morsel=" << config.morsel_specs
          << " steal=" << config.steal << " spec " << i;
    }
    server.Stop();
    const ServerStats stats = server.Stats();
    // One hot group, one arena; a lane that built it reuses it for its own
    // later specs even when other lanes raced the build with live sampling.
    EXPECT_GE(stats.cache.arena_builds, 1u);
    EXPECT_GE(stats.cache.arena_spec_reuses, 1u);
    EXPECT_GT(stats.cache.arena_bytes, 0u);
    EXPECT_EQ(stats.arena_hits(), stats.cache.arena_spec_reuses);
  }
}

TEST_F(ArenaTest, ScalarAndSimdDispatchAgreeBitwise) {
  // Forced-scalar vs the detected dispatch level: the NnTable reductions sum
  // integer popcounts, so every probability must match bit for bit.
  const std::vector<QuerySpec> specs = MakeHotSpecs(6);
  ASSERT_TRUE(ForceSimdLevel(SimdLevel::kScalar));
  const std::vector<QueryOutcome> scalar = Reference(specs);
  ASSERT_TRUE(ForceSimdLevel(DetectSimdLevel()));
  const std::vector<QueryOutcome> native = Reference(specs);
  SessionOptions options;
  options.arena_min_uses = 1;
  QuerySession session(db(), index_.get(), options);
  const std::vector<QueryOutcome> arena = session.RunAll(specs);
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(scalar[i].status.ok());
    EXPECT_TRUE(SameOutcome(scalar[i], native[i])) << i;
    EXPECT_TRUE(SameOutcome(scalar[i], arena[i])) << i;
  }
}

TEST_F(ArenaTest, ArenaOutlivesSessionCacheEvictionUnderSharedLease) {
  // Lanes hold a session (and through it, arena shared_ptrs) via shared
  // leases while the cache evicts: capacity churn and epoch eviction must
  // never invalidate an arena mid-evaluation. Two threads run morsels on
  // the leased session while the main thread hammers the cache.
  const std::vector<QuerySpec> specs = MakeHotSpecs(16);
  const std::vector<QueryOutcome> expected = Reference(specs);
  SessionOptions session_options;
  session_options.arena_min_uses = 1;
  SessionCache cache(/*capacity=*/1, session_options);
  DbSnapshot snap = db().Snapshot();
  auto lease = cache.CheckoutShared(snap, T_, index_.get());
  ASSERT_TRUE(lease);

  std::vector<QueryOutcome> outcomes(specs.size());
  const size_t half = specs.size() / 2;
  std::thread worker([&] {
    QuerySession::ExecScratch scratch;
    for (size_t i = half; i < specs.size(); ++i) {
      lease->RunMorsel(specs, i, i + 1, outcomes.data(), nullptr, &scratch);
    }
  });
  {
    QuerySession::ExecScratch scratch;
    for (size_t i = 0; i < half; ++i) {
      lease->RunMorsel(specs, i, i + 1, outcomes.data(), nullptr, &scratch);
      // Churn the cache while the lease is live: fill past capacity with
      // other intervals, then advance the epoch floor so the leased session
      // is dropped (not reinserted) at final release.
      TimeInterval other{static_cast<Tic>(T_.start + i % 3),
                         static_cast<Tic>(T_.start + 3 + i % 3)};
      cache.CheckoutShared(snap, other, index_.get()).Release();
      cache.EvictStale(snap.version() + 1);
    }
  }
  worker.join();
  for (size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(outcomes[i].status.ok()) << i;
    EXPECT_TRUE(SameOutcome(outcomes[i], expected[i])) << i;
  }
  const SessionCacheStats mid = cache.stats();
  EXPECT_GE(mid.arena_builds, 1u);
  EXPECT_GE(mid.arena_spec_reuses, 1u);
  lease.Release();  // last holder: the stale session dies here
  // The cache-owned counters survive the session.
  const SessionCacheStats after = cache.stats();
  EXPECT_EQ(after.arena_builds, mid.arena_builds);
  EXPECT_GE(after.evictions_stale, 1u);
}

}  // namespace
}  // namespace ust
