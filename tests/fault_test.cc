// Tests of the fault-injection registry (util/fault.h) and the chaos test
// of the serving tier (DESIGN.md section 11): with every injection point
// armed — stalled lanes, failing session builds, failing compactions,
// denied arena allocations and a skewed deadline clock — a concurrent
// submit burst racing Stop() must still resolve every promise exactly once
// and keep the request ledger reconciled:
//   submitted == admitted + rejected,
//   rejected  == rejected_queue_full + rejected_shed + rejected_draining,
//   admitted  == completed (one outcome per admission, error or not).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/query_server.h"
#include "util/fault.h"
#include "util/rng.h"

namespace ust {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::ClearAll(); }
  void TearDown() override { fault::ClearAll(); }
};

TEST_F(FaultRegistryTest, DisarmedProbesAreNoops) {
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldFail("nothing"));
  EXPECT_EQ(fault::SkewNs("nothing"), 0);
  fault::MaybeStall("nothing");  // returns immediately
  EXPECT_EQ(fault::FireCount("nothing"), 0u);
  EXPECT_EQ(fault::ProbeCount("nothing"), 0u);
  EXPECT_TRUE(fault::ArmedPoints().empty());
}

TEST_F(FaultRegistryTest, FireWindowIsDeterministic) {
  fault::FaultSpec spec;
  spec.skip_first = 2;
  spec.max_fires = 3;
  fault::Arm("p", spec);
  EXPECT_TRUE(fault::Enabled());
  // Probes 1-2 pass, 3-5 fire, 6+ pass again — same answer every time.
  std::vector<bool> fired;
  for (int i = 0; i < 8; ++i) fired.push_back(fault::ShouldFail("p"));
  EXPECT_EQ(fired, std::vector<bool>(
                       {false, false, true, true, true, false, false, false}));
  EXPECT_EQ(fault::ProbeCount("p"), 8u);
  EXPECT_EQ(fault::FireCount("p"), 3u);
}

TEST_F(FaultRegistryTest, OnlyTheArmedPointFires) {
  fault::Arm("armed", fault::FaultSpec{});
  EXPECT_TRUE(fault::ShouldFail("armed"));
  // A different point probed while the registry is enabled stays a no-op
  // and is not counted.
  EXPECT_FALSE(fault::ShouldFail("other"));
  EXPECT_EQ(fault::ProbeCount("other"), 0u);
  EXPECT_EQ(fault::ArmedPoints(), std::vector<std::string>({"armed"}));
}

TEST_F(FaultRegistryTest, ReArmingResetsTheWindow) {
  fault::FaultSpec spec;
  spec.max_fires = 1;
  fault::Arm("p", spec);
  EXPECT_TRUE(fault::ShouldFail("p"));
  EXPECT_FALSE(fault::ShouldFail("p"));  // window exhausted
  fault::Arm("p", spec);                 // counters reset
  EXPECT_EQ(fault::ProbeCount("p"), 0u);
  EXPECT_TRUE(fault::ShouldFail("p"));
}

TEST_F(FaultRegistryTest, DisarmStopsFiringAndClearAllDropsState) {
  fault::Arm("p", fault::FaultSpec{});
  EXPECT_TRUE(fault::ShouldFail("p"));
  fault::Disarm("p");
  EXPECT_FALSE(fault::Enabled());
  EXPECT_FALSE(fault::ShouldFail("p"));
  // Counters survive a plain Disarm (post-mortem reads)...
  EXPECT_EQ(fault::FireCount("p"), 1u);
  // ...and ClearAll drops everything.
  fault::ClearAll();
  EXPECT_EQ(fault::FireCount("p"), 0u);
  EXPECT_EQ(fault::ProbeCount("p"), 0u);
}

TEST_F(FaultRegistryTest, SkewAppliesPerFire) {
  fault::FaultSpec spec;
  spec.skip_first = 1;
  spec.max_fires = 2;
  spec.skew_ns = 5000;
  fault::Arm("clock", spec);
  EXPECT_EQ(fault::SkewNs("clock"), 0);
  EXPECT_EQ(fault::SkewNs("clock"), 5000);
  EXPECT_EQ(fault::SkewNs("clock"), 5000);
  EXPECT_EQ(fault::SkewNs("clock"), 0);
  EXPECT_EQ(fault::FireCount("clock"), 2u);
}

TEST_F(FaultRegistryTest, StallSleepsOnlyWhenFiring) {
  fault::FaultSpec spec;
  spec.max_fires = 1;
  spec.stall_ms = 20.0;
  fault::Arm("nap", spec);
  const auto t0 = std::chrono::steady_clock::now();
  fault::MaybeStall("nap");
  const double slept_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  EXPECT_GE(slept_ms, 15.0);
  const auto t1 = std::chrono::steady_clock::now();
  fault::MaybeStall("nap");  // window exhausted: no sleep
  const double skipped_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t1)
          .count();
  EXPECT_LT(skipped_ms, 15.0);
  EXPECT_EQ(fault::FireCount("nap"), 1u);
}

// ------------------------------------------------------------- chaos test

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fault::ClearAll();
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 18;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }
  void TearDown() override { fault::ClearAll(); }

  TrajectoryDatabase& db() { return *world_->db; }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(ChaosTest, AllInjectionPointsFireAndTheLedgerReconciles) {
  // Arm every point of the serving-tier taxonomy. Windows are small so the
  // server also proves it *recovers*: later probes pass and serving
  // continues.
  fault::FaultSpec stall;
  stall.skip_first = 1;
  stall.max_fires = 2;
  stall.stall_ms = 1.0;
  fault::Arm("lane_stall", stall);
  fault::FaultSpec build_fail;
  build_fail.max_fires = 1;
  fault::Arm("session_build", build_fail);
  fault::FaultSpec compact_fail;
  compact_fail.max_fires = 1;
  fault::Arm("compaction", compact_fail);
  fault::FaultSpec alloc;
  alloc.max_fires = 2;
  fault::Arm("alloc_limit", alloc);
  fault::FaultSpec skew;
  skew.skip_first = 6;
  skew.max_fires = 4;
  skew.skew_ns = 3600LL * 1000 * 1000 * 1000;  // +1h: whatever is live expires
  fault::Arm("deadline_skew", skew);

  ServerOptions options;
  options.lanes = 2;
  options.max_batch_size = 4;
  options.max_batch_delay_ms = 0.2;
  options.arena_min_uses = 1;  // every Monte-Carlo group probes alloc_limit
  options.compaction = true;
  options.compaction_interval_ms = 2.0;
  options.compaction_min_depth = 1;
  QueryServer server(db(), index_.get(), options);

  // A write gives the compactor a delta to chase; its first rebuild attempt
  // eats the injected failure and the old base stays live.
  const ObjectId last = static_cast<ObjectId>(db().size() - 1);
  ASSERT_TRUE(db().ExtendLifetime(last, db().object(last).last_tic() + 2).ok());

  constexpr int kClients = 3;
  constexpr int kPerClient = 10;
  std::vector<std::future<QueryOutcome>> futures(kClients * kPerClient);
  std::vector<std::thread> clients;
  Rng rng(5);
  std::vector<QuerySpec> specs;
  for (int i = 0; i < kClients * kPerClient; ++i) {
    QuerySpec spec;
    spec.kind = QueryKind::kForall;
    spec.q = RandomQueryState(*world_->space, rng);
    spec.T = i % 2 == 0 ? T_ : TimeInterval{T_.start, T_.end - 2};
    spec.tau = 0.05;
    spec.mc.num_worlds = 200;
    spec.mc.seed = 21 + (i % 4);   // repeated seeds: arena-able groups
    spec.backend = ExecutorKind::kMonteCarlo;
    spec.deadline_ms = 3.6e6;  // 1h: only the injected skew can expire it
    specs.push_back(spec);
  }
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        const int slot = c * kPerClient + i;
        futures[slot] = server.Submit(specs[slot]);
      }
    });
  }
  for (auto& client : clients) client.join();

  // The compactor polls every 2 ms; give it time to take the failure.
  const auto compact_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (fault::FireCount("compaction") == 0 &&
         std::chrono::steady_clock::now() < compact_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Stop mid-stream, racing a few late submits against the drain.
  std::thread stopper([&] { server.Stop(); });
  std::vector<std::future<QueryOutcome>> late(4);
  for (auto& f : late) f = server.Submit(specs[0]);
  stopper.join();

  // Every promise resolves exactly once — a leak would hang right here.
  size_t ok = 0, expired = 0, internal = 0, draining = 0;
  const auto tally = [&](std::future<QueryOutcome>& f) {
    const QueryOutcome outcome = f.get();
    switch (outcome.status.code()) {
      case StatusCode::kOk: ++ok; break;
      case StatusCode::kDeadlineExceeded: ++expired; break;
      case StatusCode::kInternal: ++internal; break;  // failed session build
      case StatusCode::kResourceLimit: ++draining; break;
      default: FAIL() << "unexpected status " << outcome.status.ToString();
    }
  };
  for (auto& f : futures) tally(f);
  for (auto& f : late) tally(f);

  // Every armed point fired at least once (and within its window).
  for (const char* point : {"lane_stall", "session_build", "compaction",
                            "alloc_limit", "deadline_skew"}) {
    EXPECT_GE(fault::FireCount(point), 1u) << point;
  }
  EXPECT_EQ(fault::FireCount("session_build"), 1u);
  EXPECT_EQ(fault::FireCount("compaction"), 1u);

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, futures.size() + late.size());
  EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
  EXPECT_EQ(stats.rejected, stats.rejected_queue_full + stats.rejected_shed +
                                stats.rejected_draining);
  EXPECT_EQ(stats.admitted, stats.completed);
  // The client-side tally agrees with the server's ledger.
  EXPECT_EQ(ok + expired + internal, stats.admitted);
  EXPECT_EQ(draining, stats.rejected);
  // The injected failures surfaced through their counters.
  EXPECT_EQ(stats.cache.build_failures, 1u);
  EXPECT_GE(stats.compaction_failures, 1u);
  EXPECT_GE(stats.expired_in_queue + stats.expired_on_lane, 1u);
  EXPECT_EQ(expired, stats.expired_in_queue + stats.expired_on_lane);
}

}  // namespace
}  // namespace ust
