// Tests of the overload machinery (DESIGN.md section 11): the regime state
// machine (watermarks, queue-delay EWMA, one-step de-escalation under
// hysteresis), admission-side shedding and graceful precision degradation,
// deadline propagation (expiry in the queue and at morsel boundaries only),
// and the two determinism contracts the tier must keep under overload:
//   - a degraded spec is itself a deterministic spec (bit-identical to a
//     serial session running the coarsened spec), and
//   - expiring some requests of a batch never perturbs the survivors —
//     their outcomes stay bitwise-identical to running the survivors alone,
//     at any {lanes, steal} schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/session.h"
#include "server/overload.h"
#include "server/query_server.h"
#include "util/rng.h"

namespace ust {
namespace {

bool SameOutcome(const QueryOutcome& a, const QueryOutcome& b) {
  if (a.status.code() != b.status.code()) return false;
  if (a.kind != b.kind || a.executor != b.executor) return false;
  if (a.pnn.results.size() != b.pnn.results.size()) return false;
  for (size_t i = 0; i < a.pnn.results.size(); ++i) {
    if (a.pnn.results[i].object != b.pnn.results[i].object) return false;
    if (a.pnn.results[i].prob != b.pnn.results[i].prob) return false;  // bitwise
  }
  if (a.pnn.num_candidates != b.pnn.num_candidates) return false;
  if (a.pnn.num_influencers != b.pnn.num_influencers) return false;
  if (a.pcnn.pcnn.entries.size() != b.pcnn.pcnn.entries.size()) return false;
  for (size_t i = 0; i < a.pcnn.pcnn.entries.size(); ++i) {
    const PcnnEntry& x = a.pcnn.pcnn.entries[i];
    const PcnnEntry& y = b.pcnn.pcnn.entries[i];
    if (x.object != y.object || x.tics != y.tics || x.prob != y.prob) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------- the controller

TEST(OverloadControllerTest, EscalatesAtUtilizationWatermarks) {
  OverloadController controller;  // defaults: degrade 0.50, shed 0.85
  EXPECT_EQ(controller.Update(0, 100), OverloadRegime::kNormal);
  EXPECT_EQ(controller.Update(49, 100), OverloadRegime::kNormal);
  EXPECT_EQ(controller.Update(50, 100), OverloadRegime::kDegrade);
  EXPECT_EQ(controller.escalations(), 1u);
  EXPECT_EQ(controller.Update(85, 100), OverloadRegime::kShed);
  EXPECT_EQ(controller.escalations(), 2u);
}

TEST(OverloadControllerTest, SkipsStraightToShedUnderASpike) {
  OverloadController controller;
  EXPECT_EQ(controller.Update(90, 100), OverloadRegime::kShed);
  // A two-regime jump counts both escalations.
  EXPECT_EQ(controller.escalations(), 2u);
}

TEST(OverloadControllerTest, DeescalatesOneStepWithHysteresis) {
  OverloadController controller;
  ASSERT_EQ(controller.Update(90, 100), OverloadRegime::kShed);
  // Inside the hysteresis band (exit bar is 0.85 - 0.10): still shedding.
  EXPECT_EQ(controller.Update(80, 100), OverloadRegime::kShed);
  // Clear of the shed bar — but only one step down per update, and the
  // utilization still sits above the degrade watermark anyway.
  EXPECT_EQ(controller.Update(60, 100), OverloadRegime::kDegrade);
  // Inside the degrade hysteresis band (exit bar 0.50 - 0.10).
  EXPECT_EQ(controller.Update(45, 100), OverloadRegime::kDegrade);
  EXPECT_EQ(controller.Update(30, 100), OverloadRegime::kNormal);
  // De-escalations are not escalations.
  EXPECT_EQ(controller.escalations(), 2u);
}

TEST(OverloadControllerTest, IdleNeverStepsDownTwoRegimesAtOnce) {
  OverloadController controller;
  ASSERT_EQ(controller.Update(90, 100), OverloadRegime::kShed);
  // Even a dead-idle signal walks down one regime per update: shed ->
  // degrade -> normal over two updates, never shed -> normal in one.
  EXPECT_EQ(controller.Update(0, 100), OverloadRegime::kDegrade);
  EXPECT_EQ(controller.Update(0, 100), OverloadRegime::kNormal);
}

TEST(OverloadControllerTest, QueueDelayEwmaDrivesRegimesAlone) {
  OverloadController controller;
  // First sample initializes the EWMA outright (no warm-up bias).
  EXPECT_EQ(controller.queue_delay_ewma_ms(), 0.0);
  controller.NoteQueueDelay(2000.0 * 1000.0);  // 2000 ms >= shed_queue_ms
  EXPECT_DOUBLE_EQ(controller.queue_delay_ewma_ms(), 2000.0);
  // Utilization is zero: the queue signal alone must raise the regime.
  EXPECT_EQ(controller.Update(0, 100), OverloadRegime::kShed);
  // Fast flushes decay the EWMA; the regime then steps down one per update.
  for (int i = 0; i < 60; ++i) controller.NoteQueueDelay(0.0);
  EXPECT_LT(controller.queue_delay_ewma_ms(),
            controller.options().degrade_queue_ms * 0.9);
  EXPECT_EQ(controller.Update(0, 100), OverloadRegime::kDegrade);
  EXPECT_EQ(controller.Update(0, 100), OverloadRegime::kNormal);
}

TEST(OverloadControllerTest, DisabledPinsNormal) {
  OverloadOptions options;
  options.enabled = false;
  OverloadController controller(options);
  EXPECT_EQ(controller.Update(100, 100), OverloadRegime::kNormal);
  EXPECT_EQ(controller.escalations(), 0u);
}

TEST(OverloadControllerTest, RegimeNamesAreStable) {
  EXPECT_STREQ(OverloadRegimeName(OverloadRegime::kNormal), "normal");
  EXPECT_STREQ(OverloadRegimeName(OverloadRegime::kDegrade), "degrade");
  EXPECT_STREQ(OverloadRegimeName(OverloadRegime::kShed), "shed");
}

// ------------------------------------------------------------- the server

class OverloadServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SyntheticConfig config;
    config.num_states = 600;
    config.num_objects = 18;
    config.lifetime = 24;
    config.obs_interval = 6;
    config.horizon = 40;
    config.seed = 77;
    auto world = GenerateSyntheticWorld(config);
    ASSERT_TRUE(world.ok());
    world_ = std::make_unique<SyntheticWorld>(world.MoveValue());
    auto tree = UstTree::Build(*world_->db);
    ASSERT_TRUE(tree.ok());
    index_ = std::make_unique<UstTree>(tree.MoveValue());
    T_ = BusiestInterval(*world_->db, 6);
  }

  TrajectoryDatabase& db() { return *world_->db; }

  /// Monte-Carlo P∀NN specs on the implicit fixed-worlds default — the
  /// degradable request class. Seeds differ per spec.
  std::vector<QuerySpec> MakeMcSpecs(size_t n, size_t worlds = 300) const {
    Rng rng(5);
    std::vector<QuerySpec> specs;
    for (size_t i = 0; i < n; ++i) {
      QuerySpec spec;
      spec.kind = QueryKind::kForall;
      spec.q = RandomQueryState(*world_->space, rng);
      spec.T = i % 2 == 0 ? T_ : TimeInterval{T_.start, T_.end - 2};
      spec.tau = 0.05;
      spec.mc.num_worlds = worlds;
      spec.mc.seed = 21 + i;
      spec.backend = ExecutorKind::kMonteCarlo;
      specs.push_back(spec);
    }
    return specs;
  }

  std::unique_ptr<SyntheticWorld> world_;
  std::unique_ptr<UstTree> index_;
  TimeInterval T_{0, 0};
};

TEST_F(OverloadServerTest, ShedsLowPriorityAndSparesHighUnderOverload) {
  const std::vector<QuerySpec> specs = MakeMcSpecs(4);
  ServerOptions options;
  options.queue_capacity = 4;
  options.overload.degrade_watermark = 0.25;
  options.overload.shed_watermark = 0.50;
  QueryServer server(db(), index_.get(), options);
  server.Pause();  // utilization builds deterministically while dispatch holds

  std::vector<std::future<QueryOutcome>> futures;
  // 1st submit sees 0/4 (normal), 2nd sees 1/4 (degrade), 3rd sees 2/4 —
  // the shed watermark.
  futures.push_back(server.Submit(specs[0]));
  futures.push_back(server.Submit(specs[1]));
  QuerySpec low = specs[2];  // priority 0: the shed class
  std::future<QueryOutcome> shed_future = server.Submit(low);
  QuerySpec high = specs[3];
  high.priority = 1;  // above shed_max_priority: rides out the overload
  futures.push_back(server.Submit(std::move(high)));

  // The shed rejection resolves immediately, without a queue slot.
  ASSERT_EQ(shed_future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_EQ(shed_future.get().status.code(), StatusCode::kResourceLimit);

  server.Resume();
  for (auto& f : futures) EXPECT_TRUE(f.get().status.ok());
  server.Stop();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.submitted, 4u);
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.rejected_shed, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  // Submits 2 and 4 were admitted above the degrade watermark on implicit
  // fixed-worlds specs, so both were coarsened.
  EXPECT_EQ(stats.degraded_requests, 2u);
  EXPECT_GE(stats.overload_regime, 1u);
}

TEST_F(OverloadServerTest, DegradeCoarsensOnlyImplicitPrecisionSpecs) {
  ServerOptions options;
  options.overload.degrade_watermark = 0.0;  // always at least kDegrade
  options.overload.shed_watermark = 2.0;     // never shed
  QueryServer server(db(), index_.get(), options);

  // (a) Implicit fixed-worlds Monte-Carlo: the degradable class.
  QuerySpec implicit_spec = MakeMcSpecs(1)[0];
  // (b) An explicit precision contract is never overridden.
  QuerySpec explicit_spec = implicit_spec;
  explicit_spec.precision.mode = PrecisionMode::kEpsilon;
  explicit_spec.precision.epsilon = 0.001;
  // (c) Continuous queries have no world-count knob to coarsen.
  QuerySpec continuous_spec = MakeMcSpecs(1)[0];
  continuous_spec.kind = QueryKind::kContinuous;
  continuous_spec.tau = 0.3;

  const QueryOutcome implicit_out = server.Submit(implicit_spec).get();
  const QueryOutcome explicit_out = server.Submit(explicit_spec).get();
  const QueryOutcome continuous_out = server.Submit(continuous_spec).get();
  EXPECT_TRUE(implicit_out.status.ok());
  EXPECT_TRUE(explicit_out.status.ok());
  EXPECT_TRUE(continuous_out.status.ok());
  server.Stop();
  EXPECT_EQ(server.Stats().degraded_requests, 1u);

  // The degraded spec is itself a deterministic spec: bit-identical to a
  // serial session running the coarsened spec directly.
  QuerySpec coarse = implicit_spec;
  coarse.precision.mode = PrecisionMode::kEpsilon;
  coarse.precision.epsilon = options.overload.degrade_epsilon;
  coarse.precision.delta = options.overload.degrade_delta;
  QuerySession reference(db().Snapshot(), index_.get());
  EXPECT_TRUE(SameOutcome(implicit_out, reference.RunAll({coarse})[0]));
  // And the explicit spec ran under *its* contract, not the server's.
  QuerySession reference2(db().Snapshot(), index_.get());
  EXPECT_TRUE(
      SameOutcome(explicit_out, reference2.RunAll({explicit_spec})[0]));
}

TEST_F(OverloadServerTest, ExpiredRequestsResolveInQueueWithoutLaneTime) {
  const std::vector<QuerySpec> base = MakeMcSpecs(3);
  ServerOptions options;
  QueryServer server(db(), index_.get(), options);
  server.Pause();  // everything expires while dispatch holds

  std::vector<std::future<QueryOutcome>> futures;
  for (const QuerySpec& spec : base) {
    QuerySpec doomed = spec;
    doomed.deadline_ms = 2.0;
    futures.push_back(server.Submit(std::move(doomed)));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.Resume();
  for (auto& f : futures) {
    const QueryOutcome outcome = f.get();
    EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded);
  }
  server.Stop();

  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.expired_in_queue, 3u);
  EXPECT_EQ(stats.expired_on_lane, 0u);
  // Expired requests still count completed: one outcome per admission.
  EXPECT_EQ(stats.completed, 3u);
  // No lane ever saw them.
  for (const LaneStats& lane : stats.lanes) {
    EXPECT_EQ(lane.morsels, 0u);
  }
}

TEST_F(OverloadServerTest, SurvivorsAreBitIdenticalAtAnySchedule) {
  // The deadline-determinism contract: expiry can only drop whole specs at
  // request/morsel boundaries, so the specs that *do* execute return
  // bitwise-identical outcomes to running the survivors alone — whatever
  // the lane count or steal mode, and whatever interleaving the expired
  // requests had with them.
  const std::vector<QuerySpec> all = MakeMcSpecs(10);
  std::vector<QuerySpec> survivors;
  for (size_t i = 0; i < all.size(); ++i) {
    if (i % 3 != 1) survivors.push_back(all[i]);
  }
  QuerySession reference(db().Snapshot(), index_.get());
  const std::vector<QueryOutcome> expected = reference.RunAll(survivors);

  for (int lanes : {1, 2}) {
    for (bool steal : {false, true}) {
      ServerOptions options;
      options.lanes = lanes;
      options.steal = steal;
      options.max_batch_size = 64;  // one mixed batch
      options.max_batch_delay_ms = 5.0;
      QueryServer server(db(), index_.get(), options);
      server.Pause();

      std::vector<std::future<QueryOutcome>> futures;
      for (size_t i = 0; i < all.size(); ++i) {
        QuerySpec spec = all[i];
        if (i % 3 == 1) spec.deadline_ms = 2.0;  // doomed
        futures.push_back(server.Submit(std::move(spec)));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      server.Resume();

      size_t next_survivor = 0;
      for (size_t i = 0; i < futures.size(); ++i) {
        const QueryOutcome outcome = futures[i].get();
        if (i % 3 == 1) {
          EXPECT_EQ(outcome.status.code(), StatusCode::kDeadlineExceeded)
              << "lanes=" << lanes << " steal=" << steal << " i=" << i;
        } else {
          EXPECT_TRUE(SameOutcome(outcome, expected[next_survivor]))
              << "lanes=" << lanes << " steal=" << steal << " i=" << i;
          ++next_survivor;
        }
      }
      server.Stop();
      const ServerStats stats = server.Stats();
      EXPECT_EQ(stats.completed, all.size());
      EXPECT_EQ(stats.expired_in_queue + stats.expired_on_lane,
                all.size() - survivors.size());
    }
  }
}

TEST_F(OverloadServerTest, SubmitAfterStopIsDeterministicBackpressure) {
  QueryServer server(db(), index_.get(), ServerOptions{});
  server.Stop();
  for (int i = 0; i < 3; ++i) {
    auto future = server.Submit(MakeMcSpecs(1)[0]);
    ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    EXPECT_EQ(future.get().status.code(), StatusCode::kResourceLimit);
  }
  const ServerStats stats = server.Stats();
  EXPECT_EQ(stats.rejected_draining, 3u);
  EXPECT_EQ(stats.rejected, 3u);
}

TEST_F(OverloadServerTest, SubmitVsStopHammerNeverLeaksAPromise) {
  // The draining race: clients submit full-tilt while another thread stops
  // the server. Whatever interleaving the scheduler picks, every future
  // must resolve (served, or rejected as draining) and the ledger must
  // reconcile exactly — a promise leak would hang a .get() forever and a
  // missed counter would break the invariants.
  const std::vector<QuerySpec> specs = MakeMcSpecs(6, /*worlds=*/50);
  for (int round = 0; round < 6; ++round) {
    ServerOptions options;
    options.max_batch_size = 4;
    options.max_batch_delay_ms = 0.2;
    QueryServer server(db(), index_.get(), options);

    constexpr int kClients = 3;
    constexpr int kPerClient = 8;
    std::vector<std::future<QueryOutcome>> futures(kClients * kPerClient);
    std::atomic<bool> go{false};
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kPerClient; ++i) {
          futures[c * kPerClient + i] =
              server.Submit(specs[(c + i) % specs.size()]);
        }
      });
    }
    go.store(true);
    // Stop lands at a different point of the submit stream each round.
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    server.Stop();
    for (auto& client : clients) client.join();

    size_t ok = 0, draining = 0;
    for (auto& f : futures) {
      const QueryOutcome outcome = f.get();  // must never hang
      if (outcome.status.ok()) {
        ++ok;
      } else {
        ASSERT_EQ(outcome.status.code(), StatusCode::kResourceLimit);
        ++draining;
      }
    }
    const ServerStats stats = server.Stats();
    EXPECT_EQ(stats.submitted, futures.size());
    EXPECT_EQ(stats.submitted, stats.admitted + stats.rejected);
    EXPECT_EQ(stats.rejected,
              stats.rejected_queue_full + stats.rejected_shed +
                  stats.rejected_draining);
    EXPECT_EQ(stats.admitted, stats.completed);
    EXPECT_EQ(ok, stats.admitted);
    EXPECT_EQ(draining, stats.rejected);
    EXPECT_EQ(stats.rejected_draining, stats.rejected);
  }
}

}  // namespace
}  // namespace ust
