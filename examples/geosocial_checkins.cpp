// Geo-social network: "who were my nearest friends during the concert?"
//
// Users of a geo-social network publish sparse check-ins. For a past event
// (a time interval and a venue), we retrieve the friends most likely to have
// been nearby — the paper's motivating GSN application — using the
// k-nearest-neighbor extension (Section 8): a friend qualifies when they
// were plausibly among the k closest users during the event.
#include <cstdio>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"

using namespace ust;

int main() {
  // A city modeled as a geometric network; users check in every ~15 tics.
  SyntheticConfig config;
  config.num_states = 5000;
  config.branching = 8.0;
  config.num_objects = 80;   // friends of the asking user
  config.lifetime = 90;
  config.obs_interval = 15;  // sparse check-ins
  config.lag = 0.6;          // people wander, not shortest-path robots
  config.horizon = 120;
  config.seed = 99;
  auto world = GenerateSyntheticWorld(config);
  UST_CHECK(world.ok());
  const TrajectoryDatabase& db = *world.value().db;

  // The concert: 10 tics at a fixed venue.
  TimeInterval concert = BusiestInterval(db, 10);
  Rng rng(3);
  QueryTrajectory venue = RandomQueryState(db.space(), rng);
  std::printf(
      "concert at (%.3f, %.3f), tics [%d, %d]; %zu friends with check-ins\n",
      venue.At(concert.start).x, venue.At(concert.start).y, concert.start,
      concert.end, db.size());

  auto index = UstTree::Build(db);
  UST_CHECK(index.ok());
  QueryEngine engine(db, &index.value());

  for (int k : {1, 3}) {
    MonteCarloOptions options;
    options.num_worlds = 2000;
    options.k = k;
    auto sometime = engine.Exists(venue, concert, /*tau=*/0.3, options);
    UST_CHECK(sometime.ok());
    std::printf("\nfriends plausibly among the %d closest at some moment "
                "(P >= 0.3): %zu\n",
                k, sometime.value().results.size());
    for (const auto& r : sometime.value().results) {
      std::printf("  friend %3u  p = %.3f\n", r.object, r.prob);
    }
    auto whole = engine.Forall(venue, concert, /*tau=*/0.2, options);
    UST_CHECK(whole.ok());
    std::printf("friends plausibly among the %d closest for the whole "
                "concert (P >= 0.2): %zu\n",
                k, whole.value().results.size());
    for (const auto& r : whole.value().results) {
      std::printf("  friend %3u  p = %.3f\n", r.object, r.prob);
    }
  }
  return 0;
}
