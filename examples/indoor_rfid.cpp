// Indoor RFID tracking: where was the person between two reader events?
//
// A person walks through a small office floor instrumented with static RFID
// readers (the paper's indoor-tracking motivation [1]). Between reader hits
// the position is uncertain. This example visualizes how the a-posteriori
// model (Algorithm 2) concentrates probability mass compared to
//   NO — a-priori propagation from the first reading only, and
//   F  — forward-only filtering (no future information),
// reproducing the qualitative picture of the paper's Figure 4.
#include <cstdio>
#include <vector>

#include "model/adaptation.h"
#include "state/state_space.h"
#include "util/check.h"

using namespace ust;

namespace {

constexpr int kWidth = 7;   // rooms per corridor row
constexpr int kHeight = 3;  // rows

StateId Cell(int x, int y) { return static_cast<StateId>(y * kWidth + x); }

// 4-connected floor plan with a stay-in-place option.
TransitionMatrixPtr FloorPlanModel() {
  std::vector<std::vector<TransitionMatrix::Entry>> rows(kWidth * kHeight);
  for (int y = 0; y < kHeight; ++y) {
    for (int x = 0; x < kWidth; ++x) {
      std::vector<TransitionMatrix::Entry>& row = rows[Cell(x, y)];
      std::vector<StateId> neighbors;
      if (x > 0) neighbors.push_back(Cell(x - 1, y));
      if (x + 1 < kWidth) neighbors.push_back(Cell(x + 1, y));
      if (y > 0) neighbors.push_back(Cell(x, y - 1));
      if (y + 1 < kHeight) neighbors.push_back(Cell(x, y + 1));
      const double move = 0.8 / neighbors.size();
      for (StateId nb : neighbors) row.push_back({nb, move});
      row.push_back({Cell(x, y), 0.2});
    }
  }
  const size_t num_states = rows.size();
  auto m = TransitionMatrix::FromRows(num_states, std::move(rows));
  UST_CHECK(m.ok());
  return std::make_shared<const TransitionMatrix>(m.MoveValue());
}

void PrintHeatmap(const char* label, const SparseDist& dist) {
  std::printf("%-3s", label);
  for (int y = 0; y < kHeight; ++y) {
    if (y > 0) std::printf("   ");
    for (int x = 0; x < kWidth; ++x) {
      double p = dist.Prob(Cell(x, y));
      if (p <= 0.0) {
        std::printf(" .   ");
      } else {
        std::printf("%.2f ", p);
      }
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  auto matrix = FloorPlanModel();
  // Reader hits: entrance (0,1) at t=0, printer room (6,1) at t=8.
  auto obs = ObservationSeq::Create({{0, Cell(0, 1)}, {8, Cell(6, 1)}});
  UST_CHECK(obs.ok());

  auto posterior = AdaptTransitionMatrices(*matrix, obs.value());
  UST_CHECK(posterior.ok());
  auto forward = ForwardFilterMarginals(*matrix, obs.value());
  UST_CHECK(forward.ok());
  auto apriori = AprioriMarginals(*matrix, obs.value().first(), 9);

  std::printf("office floor %dx%d, reader hits at t=0 (entrance) and t=8 "
              "(printer room)\n\n",
              kWidth, kHeight);
  for (Tic t : {2, 4, 6, 7}) {
    std::printf("t = %d\n", t);
    PrintHeatmap("NO", apriori[static_cast<size_t>(t)]);
    PrintHeatmap("F", forward.value()[static_cast<size_t>(t)]);
    PrintHeatmap("FB", posterior.value().MarginalAt(t));
    std::printf("\n");
  }

  // The posterior knows the person must make progress towards the printer
  // room; count how much mass each model wastes on unreachable cells.
  for (Tic t : {4, 7}) {
    const auto& post = posterior.value().MarginalAt(t);
    double wasted_no = 0.0, wasted_f = 0.0;
    for (int y = 0; y < kHeight; ++y) {
      for (int x = 0; x < kWidth; ++x) {
        if (post.Prob(Cell(x, y)) > 0.0) continue;
        wasted_no += apriori[static_cast<size_t>(t)].Prob(Cell(x, y));
        wasted_f += forward.value()[static_cast<size_t>(t)].Prob(Cell(x, y));
      }
    }
    std::printf("t=%d: probability mass on cells the posterior rules out: "
                "NO %.2f, F %.2f, FB 0.00\n",
                t, wasted_no, wasted_f);
  }
  return 0;
}
