// Taxi-witness search — the paper's running application.
//
// A bank robbery happened at a known location during a known time window.
// GPS-tracked taxis report their position only sporadically, so their
// whereabouts during the robbery are uncertain. We ask:
//   * P∃NNQ  — which taxis might have been the closest cab at SOME moment of
//              the robbery (potential partial witnesses)?
//   * P∀NNQ  — which taxi was plausibly closest during the WHOLE robbery
//              (a witness of the entire crime scene)?
//   * PCNNQ  — which sub-intervals does each taxi cover with high
//              probability (to synchronize multiple partial witnesses)?
#include <cstdio>

#include "gen/roadnet.h"
#include "gen/workload.h"
#include "index/ust_tree.h"
#include "query/engine.h"
#include "query/pcnn.h"

using namespace ust;

int main() {
  // A city-like road network with taxis whose motion model was learned from
  // historical trips (T-Drive-style pipeline; see DESIGN.md).
  RoadnetConfig config;
  config.num_states = 3000;
  config.num_objects = 60;
  config.num_training_trips = 150;
  config.lifetime = 80;
  config.obs_interval = 8;
  config.horizon = 120;
  config.seed = 2024;
  auto world = GenerateRoadnetWorld(config);
  UST_CHECK(world.ok());
  const TrajectoryDatabase& db = *world.value().db;
  std::printf("city: %zu intersections, %zu taxis, observations every %d tics\n",
              db.space().size(), db.size(), config.obs_interval);

  // The bank: a fixed location. The robbery: 12 tics (2 minutes at 10 s/tic)
  // inside the busiest part of the database horizon.
  TimeInterval robbery = BusiestInterval(db, 12);
  Rng rng(7);
  QueryTrajectory bank = RandomQueryState(db.space(), rng);
  std::printf("robbery at (%.3f, %.3f) during tics [%d, %d]\n",
              bank.At(robbery.start).x, bank.At(robbery.start).y,
              robbery.start, robbery.end);

  // Index the taxi diamonds and run the engine.
  auto index = UstTree::Build(db);
  UST_CHECK(index.ok());
  QueryEngine engine(db, &index.value());
  MonteCarloOptions options;
  options.num_worlds = 2000;

  auto partial = engine.Exists(bank, robbery, /*tau=*/0.2, options);
  UST_CHECK(partial.ok());
  std::printf("\npruning kept %zu candidates / %zu influencers out of %zu taxis\n",
              partial.value().num_candidates, partial.value().num_influencers,
              db.size());
  std::printf("potential witnesses (P-exists-NN >= 0.2):\n");
  for (const auto& r : partial.value().results) {
    std::printf("  taxi %3u  p = %.3f\n", r.object, r.prob);
  }

  auto full = engine.Forall(bank, robbery, /*tau=*/0.1, options);
  UST_CHECK(full.ok());
  std::printf("full-scene witnesses (P-forall-NN >= 0.1):\n");
  if (full.value().results.empty()) std::printf("  (none)\n");
  for (const auto& r : full.value().results) {
    std::printf("  taxi %3u  p = %.3f\n", r.object, r.prob);
  }

  auto continuous = engine.Continuous(bank, robbery, /*tau=*/0.3, options);
  UST_CHECK(continuous.ok());
  auto maximal = FilterMaximal(continuous.value().pcnn.entries);
  std::printf("witness schedule (maximal tic sets with P-forall-NN >= 0.3):\n");
  for (const auto& e : maximal) {
    std::printf("  taxi %3u covers {", e.object);
    for (size_t i = 0; i < e.tics.size(); ++i) {
      std::printf("%s%d", i ? "," : "", e.tics[i]);
    }
    std::printf("}  p = %.3f\n", e.prob);
  }
  return 0;
}
