// Reproducible experiment pipeline: generate a world once, persist it to
// disk, reload it in an "analysis" phase, and answer a threshold query with
// the sequential (adaptive) estimator — the workflow of a user running the
// paper's queries over a frozen dataset.
#include <cstdio>
#include <string>

#include "gen/synthetic.h"
#include "gen/workload.h"
#include "io/text_io.h"
#include "query/adaptive.h"
#include "util/stats.h"

using namespace ust;

int main() {
  const std::string dir = "/tmp";
  const std::string space_path = dir + "/ustq_demo_space.txt";
  const std::string matrix_path = dir + "/ustq_demo_matrix.txt";
  const std::string obs_path = dir + "/ustq_demo_observations.txt";

  // ---- Acquisition phase: build a world and freeze it to disk. -----------
  {
    SyntheticConfig config;
    config.num_states = 2000;
    config.num_objects = 30;
    config.lifetime = 40;
    config.obs_interval = 8;
    config.horizon = 60;
    config.seed = 4;
    auto world = GenerateSyntheticWorld(config);
    UST_CHECK(world.ok());
    UST_CHECK(SaveStateSpaceFile(*world.value().space, space_path).ok());
    UST_CHECK(
        SaveTransitionMatrixFile(*world.value().matrix, matrix_path).ok());
    UST_CHECK(SaveObservationsFile(*world.value().db, obs_path).ok());
    std::printf("frozen world: %zu states, %zu objects -> %s/ustq_demo_*\n",
                world.value().space->size(), world.value().db->size(),
                dir.c_str());
  }

  // ---- Analysis phase: reload and query. ---------------------------------
  auto space = LoadStateSpaceFile(space_path);
  auto matrix = LoadTransitionMatrixFile(matrix_path);
  UST_CHECK(space.ok() && matrix.ok());
  auto space_ptr = std::make_shared<const StateSpace>(space.MoveValue());
  auto matrix_ptr =
      std::make_shared<const TransitionMatrix>(matrix.MoveValue());
  auto db = LoadObservationsFile(obs_path, space_ptr, matrix_ptr);
  UST_CHECK(db.ok());

  TimeInterval T = BusiestInterval(db.value(), 8);
  Rng rng(12);
  QueryTrajectory q = RandomQueryState(*space_ptr, rng);
  std::vector<ObjectId> alive =
      db.value().AliveSometime(T.start, T.end);
  std::printf("query at (%.3f, %.3f), T = [%d, %d], %zu objects alive\n",
              q.At(T.start).x, q.At(T.start).y, T.start, T.end, alive.size());

  // "Which objects were the NN at some point with probability >= 0.3?"
  // Decided sequentially: clear cases stop after a few hundred worlds
  // instead of the ~18k a fixed Hoeffding sizing would dictate.
  SequentialOptions options;
  options.delta = 0.05;
  options.seed = 99;
  auto decision = DecideThresholdSequential(db.value(), alive, alive, q, T,
                                            /*tau=*/0.3,
                                            PnnSemantics::kExists, options);
  UST_CHECK(decision.ok());
  std::printf("sequential decision used %zu worlds total (fixed sizing at "
              "eps=0.01: %zu)\n",
              decision.value().worlds_used,
              HoeffdingSampleCount(0.01, 0.05));
  for (const auto& d : decision.value().decisions) {
    if (!d.qualifies) continue;
    std::printf("  object %3u qualifies: p ~ %.3f (%s after %zu worlds)\n",
                d.object, d.estimate,
                d.decided ? "decided" : "undecided at cap", d.worlds_used);
  }
  return 0;
}
