// Quickstart: the paper's Figure 1 example, end to end.
//
// Two uncertain objects move over four states on a line. We ask all three
// probabilistic nearest-neighbor queries against the query point q and the
// time interval T = {1, 2, 3}, and compare the Monte-Carlo estimates with the
// exact possible-world enumeration worked out in the paper:
//   P∃NN(o2) = 0.25, P∀NN(o1) = 0.75,
//   PCNNQ(tau = 0.1) = { (o1, {1,2,3}), (o2, {2,3}) }.
#include <cstdio>
#include <memory>

#include "query/engine.h"
#include "query/exact.h"
#include "query/pcnn.h"

using namespace ust;

namespace {

TransitionMatrixPtr MakeMatrix(
    size_t n, std::vector<std::vector<TransitionMatrix::Entry>> rows) {
  auto result = TransitionMatrix::FromRows(n, std::move(rows));
  UST_CHECK(result.ok());
  return std::make_shared<const TransitionMatrix>(result.MoveValue());
}

}  // namespace

int main() {
  // --- 1. State space: four states at distances 1..4 from the query. -------
  auto space = std::make_shared<const StateSpace>(
      std::vector<Point2>{{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const StateId s1 = 0, s2 = 1, s3 = 2, s4 = 3;

  // --- 2. Per-object Markov chains (Figure 1's transition probabilities). --
  auto m1 = MakeMatrix(4, {{{s1, 1.0}},
                           {{s1, 0.5}, {s3, 0.5}},
                           {{s1, 0.5}, {s3, 0.5}},
                           {{s4, 1.0}}});
  auto m2 = MakeMatrix(4, {{{s1, 1.0}},
                           {{s2, 1.0}},
                           {{s2, 0.5}, {s4, 0.5}},
                           {{s4, 1.0}}});

  // --- 3. Database: one observation per object, lifetime until t = 3. ------
  TrajectoryDatabase db(space);
  auto obs1 = ObservationSeq::Create({{1, s2}});
  auto obs2 = ObservationSeq::Create({{1, s3}});
  UST_CHECK(obs1.ok() && obs2.ok());
  ObjectId o1 = db.AddObject(obs1.MoveValue(), m1, /*end_tic=*/3);
  ObjectId o2 = db.AddObject(obs2.MoveValue(), m2, /*end_tic=*/3);

  QueryTrajectory q = QueryTrajectory::FromPoint({0, 0});
  TimeInterval T{1, 3};

  // --- 4. Exact reference by possible-world enumeration. -------------------
  auto exact = ExactPnnByEnumeration(db, {o1, o2}, q, T);
  UST_CHECK(exact.ok());
  std::printf("exact:        P-forall-NN(o1) = %.4f   P-exists-NN(o2) = %.4f\n",
              exact.value()[0].forall_prob, exact.value()[1].exists_prob);

  // --- 5. The same through the sampling-based query engine. ----------------
  QueryEngine engine(db);
  MonteCarloOptions options;
  options.num_worlds = 20000;
  auto forall = engine.Forall(q, T, /*tau=*/0.1, options);
  auto exists = engine.Exists(q, T, /*tau=*/0.1, options);
  UST_CHECK(forall.ok() && exists.ok());
  for (const auto& r : forall.value().results) {
    std::printf("P-forall-NNQ: object o%u qualifies with prob %.4f\n",
                r.object + 1, r.prob);
  }
  for (const auto& r : exists.value().results) {
    std::printf("P-exists-NNQ: object o%u qualifies with prob %.4f\n",
                r.object + 1, r.prob);
  }

  // --- 6. Continuous query: which sub-intervals does each object own? ------
  auto pcnn = engine.Continuous(q, T, /*tau=*/0.1, options);
  UST_CHECK(pcnn.ok());
  auto maximal = FilterMaximal(pcnn.value().pcnn.entries);
  for (const auto& e : maximal) {
    std::printf("PCNNQ:        object o%u, tics {", e.object + 1);
    for (size_t i = 0; i < e.tics.size(); ++i) {
      std::printf("%s%d", i ? "," : "", e.tics[i]);
    }
    std::printf("}, prob %.4f\n", e.prob);
  }
  return 0;
}
